//===- tests/TriagedTest.cpp - Fleet ingestion service tests ---------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The triaged subsystem end to end: the wire formats (signature summaries
// and upload frames, chop-every-prefix / flip-every-byte negative-tested),
// the incremental prefix-safe HTTP parser, a live server on an ephemeral
// loopback port exercised through the blocking client — every endpoint,
// malformed-upload rejection with the store untouched, the single-writer
// sequence-ordering determinism contract (N concurrent uploaders produce a
// store byte-identical to sequential local ingestion), a byte-pinned
// /v1/sarif against the exporter golden, suppressions round-tripping
// through the file loader, drain semantics, and the crash-safe atomic
// store save.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/prof/ChromeTrace.h"
#include "sampletrack/prof/Profiler.h"
#include "sampletrack/support/Common.h"
#include "sampletrack/support/Json.h"
#include "sampletrack/trace/TraceGen.h"
#include "sampletrack/triage/Exporters.h"
#include "sampletrack/triage/TriageLog.h"
#include "sampletrack/triage/TriageStore.h"
#include "sampletrack/triaged/Client.h"
#include "sampletrack/triaged/Http.h"
#include "sampletrack/triaged/Server.h"
#include "sampletrack/triaged/Wire.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::triaged;

namespace {

RaceReport report(uint64_t Event, ThreadId Tid, VarId Var, OpKind K) {
  return RaceReport{Event, Tid, Var, K};
}

/// A deduplicated one-run summary with the given per-var hit counts, built
/// exactly like TriageTest's — worker-thread writes in insertion order.
triage::TriageSummary runWith(
    std::initializer_list<std::pair<VarId, uint64_t>> VarHits) {
  triage::RaceSink Sink;
  uint64_t Pos = 0;
  for (auto [Var, N] : VarHits)
    for (uint64_t I = 0; I < N; ++I)
      Sink.insert(report(Pos++, 1, Var, OpKind::Write));
  return Sink.summary();
}

uint64_t sigOfVar(VarId Var) {
  return triage::RaceSignature::of(Var, OpKind::Write, 1).Value;
}

std::string tmpPath(const char *Name) {
  return std::string("/tmp/sampletrack_triagedtest_") + Name + "_" +
         std::to_string(::getpid());
}

/// A raw TCP connection for the tests the blocking Client cannot express:
/// half-sent requests (deadline enforcement) and connections that just sit
/// in the queue (overload shedding).
struct RawConn {
  int Fd = -1;

  explicit RawConn(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~RawConn() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool send(std::string_view Bytes) const {
    return Fd >= 0 &&
           ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(Bytes.size());
  }
  /// Reads until the peer closes (both shed and timed-out connections are
  /// closed by the server right after the response).
  std::string recvAll() const {
    std::string Out;
    char Buf[1024];
    ssize_t N;
    while (Fd >= 0 && (N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
      Out.append(Buf, static_cast<size_t>(N));
    return Out;
  }
};

/// A small deterministic racy trace for upload tests.
Trace racyTrace(uint64_t Seed) {
  GenConfig C;
  C.NumThreads = 4;
  C.NumLocks = 3;
  C.NumVars = 32;
  C.NumEvents = 2000;
  C.UnprotectedFraction = 0.1;
  C.RacyVars = 4;
  C.Seed = Seed;
  return generateWorkload(C);
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire: signature summaries
//===----------------------------------------------------------------------===//

TEST(WireSummary, RoundTripsEverythingIncludingOverflowAccounting) {
  triage::TriageSummary S = runWith({{10, 5}, {20, 2}, {30, 1}});
  S.RacesDeclared += 4; // Pretend 4 declarations were dropped at capacity.
  S.DroppedDeclarations = 4;
  S.Capped = true;

  std::string Bytes = encodeSummary(S);
  EXPECT_TRUE(sniffSummary(Bytes));
  EXPECT_FALSE(sniffSummary("STTS")); // The store magic is not a summary.
  EXPECT_FALSE(sniffSummary("ST"));

  triage::TriageSummary Back;
  std::string Err;
  ASSERT_TRUE(decodeSummary(Bytes, Back, &Err)) << Err;
  EXPECT_TRUE(Back == S);

  // The empty summary (a clean run) round-trips too.
  triage::TriageSummary Empty, EmptyBack;
  ASSERT_TRUE(decodeSummary(encodeSummary(Empty), EmptyBack, &Err)) << Err;
  EXPECT_TRUE(EmptyBack == Empty);
}

TEST(WireSummary, RejectsEveryPrefixAndEveryByteFlip) {
  std::string Bytes = encodeSummary(runWith({{10, 3}, {20, 1}}));

  // Every strict prefix must fail and leave the output untouched.
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    triage::TriageSummary Out = runWith({{99, 1}});
    triage::TriageSummary Sentinel = Out;
    EXPECT_FALSE(decodeSummary(std::string_view(Bytes).substr(0, Len), Out))
        << "prefix of " << Len << " bytes decoded";
    EXPECT_TRUE(Out == Sentinel) << "failed decode mutated the output";
  }

  // Every single-byte corruption must fail: the header fields are
  // validated and the FNV-1a checksum covers the whole payload.
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x20);
    triage::TriageSummary Out;
    EXPECT_FALSE(decodeSummary(Bad, Out)) << "flip at byte " << I;
  }

  // Trailing garbage after a valid document is corruption, not padding.
  triage::TriageSummary Out;
  EXPECT_FALSE(decodeSummary(Bytes + "x", Out));
}

TEST(WireSummary, RejectsSemanticCorruption) {
  // A structurally valid document with inconsistent content must not pass:
  // re-frame a tampered payload with a *correct* checksum.
  auto Reframe = [](std::string Payload) {
    std::string Frame = encodeSummary(triage::TriageSummary{});
    std::string Header = Frame.substr(0, 4 + 4); // magic + format version.
    // Recompute the checksum the same way the encoder does.
    Fnv1a H;
    H.bytes(Payload.data(), Payload.size());
    uint64_t Sum = H.value();
    for (int I = 0; I < 8; ++I)
      Header.push_back(static_cast<char>((Sum >> (8 * I)) & 0xff));
    return Header + Payload;
  };
  std::string Good = encodeSummary(runWith({{10, 2}}));
  std::string Payload = Good.substr(16);

  // Zero hit count on the entry (payload layout: 21-byte header + u64
  // count at 21, then sig at 29, hits at 37).
  std::string ZeroHits = Payload;
  for (int I = 0; I < 8; ++I)
    ZeroHits[37 + I] = 0;
  triage::TriageSummary Out;
  std::string Err;
  EXPECT_FALSE(decodeSummary(Reframe(ZeroHits), Out, &Err));
  EXPECT_NE(Err.find("zero hit count"), std::string::npos) << Err;

  // An op kind past the enum's end (last payload byte).
  std::string BadKind = Payload;
  BadKind.back() = 100;
  EXPECT_FALSE(decodeSummary(Reframe(BadKind), Out, &Err));
  EXPECT_NE(Err.find("bad op kind"), std::string::npos) << Err;

  // A capped flag with no dropped declarations is inconsistent.
  std::string BadCapped = Payload;
  BadCapped[20] = 1; // capped byte (after sigVersion + 2 u64 counters).
  EXPECT_FALSE(decodeSummary(Reframe(BadCapped), Out, &Err));
  EXPECT_NE(Err.find("capped flag"), std::string::npos) << Err;
}

TEST(WireSummary, FileRoundTripAndMissingFile) {
  std::string Path = tmpPath("summary");
  triage::TriageSummary S = runWith({{10, 5}, {20, 2}});
  std::string Err;
  ASSERT_TRUE(writeSummaryFile(Path, S, &Err)) << Err;
  triage::TriageSummary Back;
  ASSERT_TRUE(readSummaryFile(Path, Back, &Err)) << Err;
  EXPECT_TRUE(Back == S);
  std::remove(Path.c_str());

  EXPECT_FALSE(readSummaryFile(Path, Back, &Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Wire: upload frames
//===----------------------------------------------------------------------===//

TEST(WireFrame, RoundTripsBothContentKinds) {
  std::string Payload = "arbitrary payload bytes \x00\x01\xff";
  for (WireContent C :
       {WireContent::BinaryTrace, WireContent::SignatureSummary}) {
    std::string Framed = frame(C, Payload);
    WireFrame Out;
    std::string Err;
    ASSERT_TRUE(parseFrame(Framed, Out, &Err)) << Err;
    EXPECT_EQ(Out.Content, C);
    EXPECT_EQ(Out.Payload, Payload);
  }
  EXPECT_STREQ(wireContentName(WireContent::BinaryTrace), "binary-trace");
  EXPECT_STREQ(wireContentName(WireContent::SignatureSummary),
               "signature-summary");
}

TEST(WireFrame, RejectsCorruption) {
  std::string Framed = frame(WireContent::SignatureSummary, "payload");
  WireFrame Out;

  // Every strict prefix (truncation at any point).
  for (size_t Len = 0; Len < Framed.size(); ++Len)
    EXPECT_FALSE(
        parseFrame(std::string_view(Framed).substr(0, Len), Out))
        << "prefix of " << Len << " bytes parsed";

  // Every single-byte flip (magic, version, kind, length, checksum, body).
  for (size_t I = 0; I < Framed.size(); ++I) {
    std::string Bad = Framed;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x04);
    EXPECT_FALSE(parseFrame(Bad, Out)) << "flip at byte " << I;
  }

  // Trailing garbage.
  std::string Err;
  EXPECT_FALSE(parseFrame(Framed + "z", Out, &Err));
  EXPECT_NE(Err.find("trailing garbage"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// HTTP parser
//===----------------------------------------------------------------------===//

namespace {

HttpParse parse(std::string_view Buf, HttpRequest &Out, size_t &Consumed,
                int &Status, const HttpLimits &Limits = HttpLimits{}) {
  return parseRequest(Buf, Limits, Out, Consumed, Status);
}

int statusOf(std::string_view Buf,
             const HttpLimits &Limits = HttpLimits{}) {
  HttpRequest R;
  size_t Consumed = 0;
  int Status = 0;
  EXPECT_EQ(parse(Buf, R, Consumed, Status, Limits), HttpParse::Bad)
      << Buf.substr(0, 40);
  return Status;
}

} // namespace

TEST(Http, ParsesPostWithHeadersQueryAndBody) {
  std::string Req = "POST /v1/runs?n=5&fast HTTP/1.1\r\n"
                    "Host: localhost\r\n"
                    "X-Sampletrack-Sequence:  7 \r\n"
                    "Content-Length: 5\r\n"
                    "\r\n"
                    "hello";
  HttpRequest R;
  size_t Consumed = 0;
  int Status = 0;
  ASSERT_EQ(parse(Req, R, Consumed, Status), HttpParse::Ok);
  EXPECT_EQ(Consumed, Req.size());
  EXPECT_EQ(R.Method, "POST");
  EXPECT_EQ(R.Path, "/v1/runs");
  EXPECT_EQ(R.Query, "n=5&fast");
  EXPECT_EQ(R.Version, "HTTP/1.1");
  EXPECT_EQ(R.Body, "hello");
  EXPECT_EQ(R.queryParam("n"), "5");
  EXPECT_EQ(R.queryParam("fast"), "");
  EXPECT_EQ(R.queryParam("absent"), "");
  // Case-insensitive header lookup, whitespace-trimmed values.
  ASSERT_NE(R.header("x-sampletrack-sequence"), nullptr);
  EXPECT_EQ(*R.header("X-SAMPLETRACK-SEQUENCE"), "7");
  EXPECT_EQ(R.header("nope"), nullptr);
}

TEST(Http, EveryStrictPrefixNeedsMore) {
  // The prefix-safety contract: any strict prefix of a valid request is
  // NeedMore — never a spurious Bad — so arbitrary socket chunking works.
  std::string Req = "POST /v1/runs HTTP/1.1\r\n"
                    "Content-Length: 3\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                    "abc";
  for (size_t Len = 0; Len < Req.size(); ++Len) {
    HttpRequest R;
    size_t Consumed = 0;
    int Status = 0;
    EXPECT_EQ(parse(std::string_view(Req).substr(0, Len), R, Consumed,
                    Status),
              HttpParse::NeedMore)
        << "prefix of " << Len << " bytes";
  }
  HttpRequest R;
  size_t Consumed = 0;
  int Status = 0;
  EXPECT_EQ(parse(Req, R, Consumed, Status), HttpParse::Ok);
  EXPECT_TRUE(R.wantsClose());
}

TEST(Http, PipelinedRequestsConsumeExactly) {
  std::string First = "GET /healthz HTTP/1.1\r\n\r\n";
  std::string Second = "GET /v1/stats HTTP/1.1\r\n\r\n";
  std::string Buf = First + Second;
  HttpRequest R;
  size_t Consumed = 0;
  int Status = 0;
  ASSERT_EQ(parse(Buf, R, Consumed, Status), HttpParse::Ok);
  EXPECT_EQ(Consumed, First.size());
  EXPECT_EQ(R.Path, "/healthz");
  ASSERT_EQ(parse(std::string_view(Buf).substr(Consumed), R, Consumed,
                  Status),
            HttpParse::Ok);
  EXPECT_EQ(R.Path, "/v1/stats");
}

TEST(Http, KeepAliveSemantics) {
  HttpRequest R;
  size_t Consumed = 0;
  int Status = 0;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\n\r\n", R, Consumed, Status),
            HttpParse::Ok);
  EXPECT_FALSE(R.wantsClose()); // 1.1 defaults to keep-alive.
  ASSERT_EQ(parse("GET / HTTP/1.0\r\n\r\n", R, Consumed, Status),
            HttpParse::Ok);
  EXPECT_TRUE(R.wantsClose()); // 1.0 defaults to close.
  ASSERT_EQ(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", R,
                  Consumed, Status),
            HttpParse::Ok);
  EXPECT_FALSE(R.wantsClose());
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", R,
                  Consumed, Status),
            HttpParse::Ok);
  EXPECT_TRUE(R.wantsClose());
}

TEST(Http, RejectsMalformedRequestsWithTheRightStatus) {
  // Syntactically broken: 400.
  EXPECT_EQ(statusOf("GET /\r\n\r\n"), 400);            // No version.
  EXPECT_EQ(statusOf("GET / a b HTTP/1.1\r\n\r\n"), 400); // 4 words.
  EXPECT_EQ(statusOf("G(T / HTTP/1.1\r\n\r\n"), 400);   // Non-token method.
  EXPECT_EQ(statusOf("GET nopath HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(statusOf("GET / HTTP/1.1\r\nBad Header: x\r\n\r\n"), 400);
  EXPECT_EQ(statusOf("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"), 400);
  EXPECT_EQ(
      statusOf("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"), 400);
  EXPECT_EQ(statusOf("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            400);

  // Duplicate Content-Length: the request-smuggling vector. Rejected even
  // when the copies agree — two parsers disagreeing on which value frames
  // the body disagree on where the next request starts.
  EXPECT_EQ(statusOf("POST / HTTP/1.1\r\nContent-Length: 2\r\n"
                     "Content-Length: 5\r\n\r\nhello"),
            400);
  EXPECT_EQ(statusOf("POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                     "Content-Length: 5\r\n\r\nhello"),
            400);
  EXPECT_EQ(statusOf("POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                     "content-length: 5\r\n\r\nhello"),
            400); // Case-insensitive field names still count as duplicates.
  // A single Content-Length stays fine (the negative's positive control).
  {
    HttpRequest R;
    size_t Consumed = 0;
    int St = 0;
    EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", R,
                    Consumed, St),
              HttpParse::Ok);
    EXPECT_EQ(R.Body, "hello");
  }

  // Unsupported-but-recognized: precise statuses.
  EXPECT_EQ(statusOf("GET / HTTP/2.0\r\n\r\n"), 505);
  EXPECT_EQ(statusOf("GET / SPDY/9\r\n\r\n"), 400); // Not even HTTP/.
  EXPECT_EQ(
      statusOf(
          "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      501);

  // Limits: oversized body (413) and oversized header block (431).
  HttpLimits Small;
  Small.MaxHeaderBytes = 128;
  Small.MaxBodyBytes = 64;
  EXPECT_EQ(statusOf("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n",
                     Small),
            413);
  std::string BigHeaders = "GET / HTTP/1.1\r\nX-Pad: " +
                           std::string(200, 'a'); // No terminator yet.
  EXPECT_EQ(statusOf(BigHeaders, Small), 431);
}

//===----------------------------------------------------------------------===//
// Server end to end (ephemeral loopback port, in-process)
//===----------------------------------------------------------------------===//

TEST(TriagedServer, ServesWarehouseEndpointsEndToEnd) {
  Server S({});
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  ASSERT_NE(S.port(), 0);
  Client C("127.0.0.1", S.port());

  Client::Response Resp;
  ASSERT_TRUE(C.get("/healthz", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_EQ(Resp.Body, "ok\n");

  // Upload a binary trace (analyzed server-side) then a summary.
  Trace T = racyTrace(7);
  UploadOutcome Up1, Up2;
  ASSERT_TRUE(C.uploadTrace(T, Up1, &Err)) << Err;
  EXPECT_EQ(Up1.Run, 1u);
  EXPECT_GT(Up1.Declared, 0u);
  EXPECT_GT(Up1.NewCount, 0u);

  ASSERT_TRUE(C.uploadSummary(runWith({{10, 5}}), Up2, &Err)) << Err;
  EXPECT_EQ(Up2.Run, 2u);
  EXPECT_EQ(Up2.NewCount, 1u);

  // The warehouse views come straight off the exporters.
  ASSERT_TRUE(C.get("/v1/ranked?n=5", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_FALSE(Resp.Body.empty());

  ASSERT_TRUE(C.get("/v1/dashboard", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_EQ(Resp.ContentType, "application/json");
  EXPECT_NE(
      Resp.Body.find(triage::RaceSignature{sigOfVar(10)}.hex()),
      std::string::npos);

  ASSERT_TRUE(C.get("/v1/sarif", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_EQ(Resp.ContentType, "application/sarif+json");
  EXPECT_NE(Resp.Body.find("\"version\": \"2.1.0\""), std::string::npos);

  ASSERT_TRUE(C.get("/v1/stats", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_NE(Resp.Body.find("\"uploadsAccepted\": 2"), std::string::npos)
      << Resp.Body;
  EXPECT_NE(Resp.Body.find("\"traceUploads\": 1"), std::string::npos);
  EXPECT_NE(Resp.Body.find("\"summaryUploads\": 1"), std::string::npos);

  // Per-run classification, after the fact.
  ASSERT_TRUE(C.get("/v1/runs/2/classified", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_NE(Resp.Body.find("\"run\": 2"), std::string::npos);
  EXPECT_NE(Resp.Body.find("\"content\": \"signature-summary\""),
            std::string::npos);
  EXPECT_NE(Resp.Body.find("\"new\": 1"), std::string::npos);

  // Routing misses and method misuse.
  ASSERT_TRUE(C.get("/v1/runs/99/classified", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 404);
  ASSERT_TRUE(C.get("/v1/nope", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 404);
  ASSERT_TRUE(C.get("/v1/runs", Resp, &Err)) << Err; // GET on POST route.
  EXPECT_EQ(Resp.Status, 405);
  ASSERT_TRUE(C.post("/healthz", "text/plain", "x", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 405);

  // The in-process snapshot agrees with what HTTP reported.
  triage::TriageStore Snap = S.snapshotStore();
  EXPECT_EQ(Snap.runCount(), 2u);
  EXPECT_TRUE(Snap.find(sigOfVar(10)) != nullptr);
  S.stop();
}

TEST(TriagedServer, StatsCarryLatencyHistogramsAndSelfProfile) {
  Server S({});
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  Client C("127.0.0.1", S.port());

  // Touch several routes so their histograms have data.
  Client::Response Resp;
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(C.get("/healthz", Resp, &Err)) << Err;
  UploadOutcome Up;
  ASSERT_TRUE(C.uploadTrace(racyTrace(7), Up, &Err)) << Err;
  ASSERT_TRUE(C.get("/v1/stats", Resp, &Err)) << Err;
  ASSERT_EQ(Resp.Status, 200);

  support::JsonValue Stats;
  ASSERT_TRUE(support::JsonValue::parse(Resp.Body, Stats, &Err)) << Err;

  // Per-endpoint latency histograms: only routes that saw traffic appear,
  // each with the bounded-bucket quantile summary.
  const support::JsonValue *Latency = Stats.get("latency");
  ASSERT_NE(Latency, nullptr);
  ASSERT_TRUE(Latency->isObject());
  for (const char *Route : {"/healthz", "/v1/runs"}) {
    const support::JsonValue *R = Latency->get(Route);
    ASSERT_NE(R, nullptr) << Route << " missing from " << Resp.Body;
    EXPECT_GE(R->getNumber("count"), Route[1] == 'h' ? 3 : 1) << Route;
    // Quantiles are power-of-two bucket upper edges (ordered); the max is
    // the exact value, so p95's bucket edge may round past it.
    bool HasMax = false;
    double P50 = R->getNumber("p50Micros"), P95 = R->getNumber("p95Micros");
    R->getNumber("maxMicros", 0, &HasMax);
    EXPECT_LE(P50, P95) << Route;
    EXPECT_TRUE(HasMax) << Route;
  }
  // /v1/stats itself was hit only after the snapshot — absent or count>=0;
  // a route nobody touched must be absent.
  EXPECT_EQ(Latency->get("/v1/sarif"), nullptr);

  // The self-profile rides along: a flat span array covering the request
  // pipeline of the trace upload.
  const support::JsonValue *Profile = Stats.get("profile");
  ASSERT_NE(Profile, nullptr);
  ASSERT_TRUE(Profile->isArray());
  bool SawAnalyze = false;
  for (const support::JsonValue &Span : Profile->Array)
    if (Span.getString("path") == "request//v1/runs/analyze")
      SawAnalyze = true;
  EXPECT_TRUE(SawAnalyze) << Resp.Body;

  // The live profiler exports a chrome trace that parses and names the
  // worker threads.
  ASSERT_NE(S.profiler(), nullptr);
  std::string Trace = prof::toChromeTrace(*S.profiler(), "triaged");
  support::JsonValue Doc;
  ASSERT_TRUE(support::JsonValue::parse(Trace, Doc, &Err)) << Err;
  ASSERT_NE(Doc.get("traceEvents"), nullptr);
  EXPECT_NE(Trace.find("http-worker-0"), std::string::npos);
  S.stop();
}

TEST(TriagedServer, ProfilingCanBeDisabledPerConfig) {
  ServerConfig Cfg;
  Cfg.ProfilingEnabled = false;
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  Client C("127.0.0.1", S.port());

  Client::Response Resp;
  ASSERT_TRUE(C.get("/healthz", Resp, &Err)) << Err;
  ASSERT_TRUE(C.get("/v1/stats", Resp, &Err)) << Err;
  ASSERT_EQ(Resp.Status, 200);
  EXPECT_EQ(S.profiler(), nullptr);

  support::JsonValue Stats;
  ASSERT_TRUE(support::JsonValue::parse(Resp.Body, Stats, &Err)) << Err;
  const support::JsonValue *Profile = Stats.get("profile");
  ASSERT_NE(Profile, nullptr);
  EXPECT_TRUE(Profile->isArray());
  EXPECT_TRUE(Profile->Array.empty());
  // The latency histograms are gated with the profiler: no timing taken.
  const support::JsonValue *Latency = Stats.get("latency");
  ASSERT_NE(Latency, nullptr);
  EXPECT_TRUE(Latency->Object.empty()) << Resp.Body;
  S.stop();
}

TEST(TriagedServer, RejectsCorruptUploadsWithoutTouchingTheStore) {
  Server S({});
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  Client C("127.0.0.1", S.port());
  Client::Response Resp;

  // Not a frame at all: 400 from parseFrame.
  ASSERT_TRUE(C.post("/v1/runs", "application/x-sampletrack-upload",
                     "definitely not a frame", Resp, &Err))
      << Err;
  EXPECT_EQ(Resp.Status, 400);

  // A checksum-corrupted frame: still 400, before any payload decoding.
  std::string Framed =
      frame(WireContent::SignatureSummary, encodeSummary(runWith({{1, 1}})));
  Framed[Framed.size() - 1] ^= 0x01;
  ASSERT_TRUE(C.post("/v1/runs", "application/x-sampletrack-upload", Framed,
                     Resp, &Err))
      << Err;
  EXPECT_EQ(Resp.Status, 400);

  // A valid frame whose payload is not what it claims: 422.
  ASSERT_TRUE(C.post("/v1/runs", "application/x-sampletrack-upload",
                     frame(WireContent::BinaryTrace, "junk"), Resp, &Err))
      << Err;
  EXPECT_EQ(Resp.Status, 422);
  ASSERT_TRUE(C.post("/v1/runs", "application/x-sampletrack-upload",
                     frame(WireContent::SignatureSummary, "junk"), Resp,
                     &Err))
      << Err;
  EXPECT_EQ(Resp.Status, 422);

  // A malformed sequence header: 400.
  ASSERT_TRUE(C.post("/v1/runs", "application/x-sampletrack-upload",
                     frame(WireContent::SignatureSummary,
                           encodeSummary(runWith({{1, 1}}))),
                     Resp, &Err, /*Sequence=*/0))
      << Err;
  EXPECT_EQ(Resp.Status, 200); // Sanity: the well-formed one lands.

  ServerStats St = S.stats();
  EXPECT_EQ(St.UploadsRejected, 4u);
  EXPECT_EQ(St.UploadsAccepted, 1u);
  EXPECT_EQ(S.snapshotStore().runCount(), 1u); // Rejections never merged.
  S.stop();
}

TEST(TriagedServer, SequenceGapTimesOutWith409) {
  ServerConfig Cfg;
  Cfg.SequenceTimeoutMillis = 200; // Fail fast; nothing will fill the gap.
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  Client C("127.0.0.1", S.port());

  std::string Body =
      frame(WireContent::SignatureSummary, encodeSummary(runWith({{1, 1}})));
  Client::Response Resp;
  ASSERT_TRUE(C.post("/v1/runs", "application/x-sampletrack-upload", Body,
                     Resp, &Err, /*Sequence=*/5))
      << Err;
  EXPECT_EQ(Resp.Status, 409);
  EXPECT_EQ(S.stats().SequenceTimeouts, 1u);
  EXPECT_EQ(S.snapshotStore().runCount(), 0u);

  // Sequence 1 is admitted immediately.
  UploadOutcome Up;
  ASSERT_TRUE(C.uploadSummary(runWith({{1, 1}}), Up, &Err, /*Sequence=*/1))
      << Err;
  EXPECT_EQ(Up.Run, 1u);
  S.stop();
}

TEST(TriagedServer, ConcurrentSequencedUploadsMatchSequentialIngest) {
  // THE determinism contract: N concurrent clients, each tagged with its
  // position in the fleet's ingest order, must leave the warehouse
  // byte-identical to merging the same summaries sequentially in-process.
  constexpr size_t N = 6;
  std::vector<triage::TriageSummary> Runs;
  for (size_t I = 0; I < N; ++I)
    // Overlapping signatures across runs (shared var 7) plus per-run fresh
    // ones, so classification actually varies with order.
    Runs.push_back(runWith({{100 + static_cast<VarId>(I) * 10,
                             static_cast<uint64_t>(I) + 1},
                            {7, 2}}));

  std::string ServerStorePath = tmpPath("concurrent_server");
  std::filesystem::remove_all(ServerStorePath);

  ServerConfig Cfg;
  Cfg.StorePath = ServerStorePath;
  Cfg.NumWorkers = N; // Every sequenced upload can hold a worker.
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  std::vector<UploadOutcome> Outcomes(N);
  std::vector<int> Ok(N, 0);
  std::vector<std::string> Errors(N);
  std::vector<std::thread> Uploaders;
  for (size_t I = 0; I < N; ++I)
    Uploaders.emplace_back([&, I] {
      // Reverse the arrival order: the highest sequence connects first and
      // must wait for every predecessor.
      std::this_thread::sleep_for(std::chrono::milliseconds((N - I) * 10));
      Client C("127.0.0.1", S.port());
      Ok[I] = C.uploadSummary(Runs[I], Outcomes[I], &Errors[I],
                              /*Sequence=*/I + 1);
    });
  for (std::thread &T : Uploaders)
    T.join();
  for (size_t I = 0; I < N; ++I) {
    ASSERT_TRUE(Ok[I]) << "upload " << I << ": " << Errors[I];
    EXPECT_EQ(Outcomes[I].Run, I + 1) << "sequence order violated";
  }
  S.stop();

  // The sequential reference: same summaries, same order, local mergeRun.
  triage::TriageStore Local;
  for (const triage::TriageSummary &R : Runs)
    Local.mergeRun(R);

  // The warehouse the server left behind — base segment plus replayed
  // journal — must serialize byte-identically to the sequential reference.
  triage::TriageLog Reopened;
  ASSERT_TRUE(Reopened.open(ServerStorePath, {}, &Err)) << Err;
  EXPECT_EQ(Reopened.store().serialize(), Local.serialize())
      << "concurrent sequenced ingest diverged from sequential ingest";

  // And the classification the clients saw matches a local replay.
  triage::TriageStore Replay;
  for (size_t I = 0; I < N; ++I) {
    triage::TriageStore::MergeResult M = Replay.mergeRun(Runs[I]);
    EXPECT_EQ(Outcomes[I].NewCount, M.NewSignatures) << "run " << I;
    EXPECT_EQ(Outcomes[I].KnownCount, M.KnownSignatures) << "run " << I;
    EXPECT_EQ(Outcomes[I].RegressedCount, M.RegressedSignatures)
        << "run " << I;
  }

  std::filesystem::remove_all(ServerStorePath);
}

TEST(TriagedServer, GoldenSarifOverHttpIsBytePinned) {
  // The same warehouse TriageTest's golden pins — built over the wire this
  // time — must render to the identical SARIF document byte for byte.
  std::string SuppPath = tmpPath("golden_supp");
  {
    std::ofstream Os(SuppPath);
    Os << "# suppress the flaky var-20 race\n"
       << triage::RaceSignature{sigOfVar(20)}.hex() << "\n";
  }

  ServerConfig Cfg;
  Cfg.ToolVersion = "1.2.3";
  Cfg.SuppressionFile = SuppPath;
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  Client C("127.0.0.1", S.port());

  UploadOutcome Up;
  ASSERT_TRUE(C.uploadSummary(runWith({{10, 5}, {20, 2}}), Up, &Err)) << Err;
  EXPECT_EQ(Up.NewCount, 1u);
  EXPECT_EQ(Up.SuppressedCount, 1u);

  Client::Response Resp;
  ASSERT_TRUE(C.get("/v1/sarif", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);

  // Byte-for-byte the exporter's own rendering of the snapshot...
  EXPECT_EQ(Resp.Body, triage::toSarif(S.snapshotStore(), "1.2.3"));
  // ...and byte-for-byte the golden document TriageTest pins.
  const char *Expected = R"sarif({
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "SampleTrack",
          "version": "1.2.3",
          "rules": [
            {
              "id": "sampletrack/data-race",
              "name": "DataRace",
              "shortDescription": {"text": "Data race detected by sampling-based happens-before analysis"}
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "sampletrack/data-race",
          "level": "warning",
          "message": {"text": "write race on V10 by worker thread: 5 declaration(s) across 1 run(s)"},
          "partialFingerprints": {"raceSignature/v1": "4b621cf676431f58"},
          "locations": [
            {"logicalLocations": [{"fullyQualifiedName": "var:10", "kind": "variable"}]}
          ],
          "properties": {"hits": 5, "runs": 1, "firstSeenRun": 1, "lastSeenRun": 1, "threadRole": "worker", "op": "w"}
        }
      ]
    }
  ]
}
)sarif";
  EXPECT_EQ(Resp.Body, Expected);
  S.stop();
  std::remove(SuppPath.c_str());
}

TEST(TriagedServer, SuppressionsEndpointRoundTripsThroughTheLoader) {
  std::string SuppPath = tmpPath("supp_in");
  {
    std::ofstream Os(SuppPath);
    Os << triage::RaceSignature{sigOfVar(10)}.hex() << "\n"
       << triage::RaceSignature{sigOfVar(20)}.hex() << "\n";
  }
  ServerConfig Cfg;
  Cfg.SuppressionFile = SuppPath;
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  Client C("127.0.0.1", S.port());

  Client::Response Resp;
  ASSERT_TRUE(C.get("/v1/suppressions", Resp, &Err)) << Err;
  EXPECT_EQ(Resp.Status, 200);

  // What the endpoint serves is itself a valid suppression file.
  std::string OutPath = tmpPath("supp_out");
  {
    std::ofstream Os(OutPath);
    Os << Resp.Body;
  }
  triage::TriageStore Fresh;
  ASSERT_TRUE(Fresh.loadSuppressionFile(OutPath, &Err)) << Err;
  EXPECT_TRUE(Fresh.isSuppressed(sigOfVar(10)));
  EXPECT_TRUE(Fresh.isSuppressed(sigOfVar(20)));

  S.stop();
  std::remove(SuppPath.c_str());
  std::remove(OutPath.c_str());
}

TEST(TriagedServer, DrainStopsAcceptingAndPersistsTheStore) {
  std::string StorePath = tmpPath("drain_store");
  std::filesystem::remove_all(StorePath);
  ServerConfig Cfg;
  Cfg.StorePath = StorePath;
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  uint16_t Port = S.port();

  Client C("127.0.0.1", Port);
  UploadOutcome Up;
  ASSERT_TRUE(C.uploadSummary(runWith({{10, 2}}), Up, &Err)) << Err;

  S.drain();
  // A drained server refuses new connections outright.
  Client::Response Resp;
  EXPECT_FALSE(Client("127.0.0.1", Port).get("/healthz", Resp));
  // ...and the warehouse it leaves behind is complete and loadable — the
  // merge was journaled and fsynced before the upload's 200, so no final
  // save at drain time is needed.
  triage::TriageLog Loaded;
  ASSERT_TRUE(Loaded.open(StorePath, {}, &Err)) << Err;
  EXPECT_EQ(Loaded.store().runCount(), 1u);
  ASSERT_NE(Loaded.store().find(sigOfVar(10)), nullptr);
  EXPECT_EQ(Loaded.store().find(sigOfVar(10))->Hits, 2u);

  S.stop(); // Idempotent over drain.
  std::filesystem::remove_all(StorePath);
}

TEST(TriagedServer, ReloadsItsOwnStoreAcrossRestarts) {
  std::string StorePath = tmpPath("restart_store");
  std::filesystem::remove_all(StorePath);
  ServerConfig Cfg;
  Cfg.StorePath = StorePath;
  std::string Err;
  {
    Server S(Cfg);
    ASSERT_TRUE(S.start(&Err)) << Err;
    UploadOutcome Up;
    ASSERT_TRUE(Client("127.0.0.1", S.port())
                    .uploadSummary(runWith({{10, 2}}), Up, &Err,
                                   /*Sequence=*/0, "shard-7.run-1"))
        << Err;
    EXPECT_FALSE(Up.Deduplicated);
    S.stop();
  }
  {
    Server S(Cfg);
    ASSERT_TRUE(S.start(&Err)) << Err;
    Client C("127.0.0.1", S.port());
    // The same race again is known, not new: history survived the restart.
    UploadOutcome Up;
    ASSERT_TRUE(C.uploadSummary(runWith({{10, 1}}), Up, &Err)) << Err;
    EXPECT_EQ(Up.Run, 2u);
    EXPECT_EQ(Up.NewCount, 0u);
    EXPECT_EQ(Up.KnownCount, 1u);
    // Per-run classification for pre-restart runs survives: the journal
    // replay rebuilt run 1's breakdown at start.
    Client::Response Resp;
    ASSERT_TRUE(C.get("/v1/runs/1/classified", Resp, &Err)) << Err;
    EXPECT_EQ(Resp.Status, 200);
    ASSERT_TRUE(C.get("/v1/runs/2/classified", Resp, &Err)) << Err;
    EXPECT_EQ(Resp.Status, 200);
    // The idempotency index survived the restart too: replaying run 1's id
    // answers the original breakdown instead of double-counting.
    ASSERT_TRUE(C.uploadSummary(runWith({{10, 2}}), Up, &Err,
                                /*Sequence=*/0, "shard-7.run-1"))
        << Err;
    EXPECT_TRUE(Up.Deduplicated);
    EXPECT_EQ(Up.Run, 1u);
    EXPECT_EQ(S.snapshotStore().runCount(), 2u);
    S.stop();
  }
  std::filesystem::remove_all(StorePath);
}

//===----------------------------------------------------------------------===//
// Idempotent retries, request deadlines, overload shedding
//===----------------------------------------------------------------------===//

TEST(TriagedServer, RunIdDeduplicatesRetriedUploads) {
  Server S(ServerConfig{});
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;
  Client C("127.0.0.1", S.port());

  // First upload under a pinned run id merges normally.
  UploadOutcome First;
  ASSERT_TRUE(C.uploadSummary(runWith({{10, 3}}), First, &Err,
                              /*Sequence=*/0, "ci-linux.42"))
      << Err;
  EXPECT_FALSE(First.Deduplicated);
  EXPECT_EQ(First.Run, 1u);
  EXPECT_EQ(First.NewCount, 1u);

  // The blind retry — the lost-200 window — answers the original's
  // breakdown and merges nothing.
  UploadOutcome Retry;
  ASSERT_TRUE(C.uploadSummary(runWith({{10, 3}}), Retry, &Err,
                              /*Sequence=*/0, "ci-linux.42"))
      << Err;
  EXPECT_TRUE(Retry.Deduplicated);
  EXPECT_EQ(Retry.Run, 1u);
  EXPECT_EQ(Retry.NewCount, 1u);
  EXPECT_EQ(S.snapshotStore().runCount(), 1u);
  EXPECT_EQ(S.snapshotStore().find(sigOfVar(10))->Hits, 3u)
      << "the retry double-counted its hits";
  EXPECT_EQ(S.stats().UploadsDeduplicated, 1u);

  // A different run id is a different run, even with identical bytes: run
  // ids are random per call, never payload-derived.
  UploadOutcome Other;
  ASSERT_TRUE(C.uploadSummary(runWith({{10, 3}}), Other, &Err,
                              /*Sequence=*/0, "ci-linux.43"))
      << Err;
  EXPECT_FALSE(Other.Deduplicated);
  EXPECT_EQ(Other.Run, 2u);
  EXPECT_EQ(S.snapshotStore().find(sigOfVar(10))->Hits, 6u);

  // A malformed run id is the caller's bug: 400, no merge.
  Client::Response Resp;
  std::string Body = frame(WireContent::SignatureSummary,
                           encodeSummary(runWith({{20, 1}})));
  ASSERT_TRUE(C.post("/v1/runs", "application/x-sampletrack-upload", Body,
                     Resp, &Err, /*Sequence=*/0, "bad id with spaces"))
      << Err;
  EXPECT_EQ(Resp.Status, 400);
  EXPECT_EQ(S.snapshotStore().runCount(), 2u);
  S.stop();
}

TEST(TriagedClient, RetriesExhaustAgainstADeadPort) {
  // Find a port that refuses connections: bind one ephemerally, then close
  // it without ever listening.
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  socklen_t Len = sizeof(Addr);
  ASSERT_EQ(::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len), 0);
  uint16_t DeadPort = ntohs(Addr.sin_port);
  ::close(Fd);

  Client C("127.0.0.1", DeadPort);
  C.Retry.MaxAttempts = 3;
  C.Retry.BaseDelayMillis = 1; // Keep the test fast.
  C.Retry.JitterSeed = 7;
  UploadOutcome Up;
  std::string Err;
  EXPECT_FALSE(C.uploadSummary(runWith({{10, 1}}), Up, &Err));
  EXPECT_NE(Err.find("3 attempt(s)"), std::string::npos) << Err;
}

TEST(TriagedServer, SlowRequestIsTimedOutWith408) {
  ServerConfig Cfg;
  Cfg.Limits.RequestDeadlineMillis = 100;
  Cfg.IdleTimeoutMillis = 60000; // Only the deadline may fire.
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  // A slowloris client: starts a request, never finishes it. Trickling a
  // header byte would defeat an idle timeout — the wall-clock deadline is
  // what catches it.
  RawConn Conn(S.port());
  ASSERT_TRUE(Conn.send("GET /healthz HTTP/1.1\r\nHost: x\r\n"));
  std::string Resp = Conn.recvAll(); // Until the server closes on us.
  EXPECT_NE(Resp.find("HTTP/1.1 408 Request Timeout"), std::string::npos)
      << Resp;
  EXPECT_EQ(S.stats().RequestTimeouts, 1u);

  // A well-behaved client on the same server is untouched.
  Client C("127.0.0.1", S.port());
  Client::Response Ok;
  ASSERT_TRUE(C.get("/healthz", Ok, &Err)) << Err;
  EXPECT_EQ(Ok.Status, 200);
  S.stop();
}

TEST(TriagedServer, OverloadShedsWith503AndRetryAfter) {
  ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.MaxQueueDepth = 1;
  Cfg.Limits.RequestDeadlineMillis = 60000;
  Cfg.IdleTimeoutMillis = 60000;
  Server S(Cfg);
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  // Occupy the only worker with a half-sent request, fill the one queue
  // slot with a second connection, then watch the third get shed.
  RawConn Busy(S.port());
  ASSERT_TRUE(Busy.send("GET /healthz HTTP/1.1\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  RawConn Queued(S.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  RawConn Shed(S.port());
  std::string Resp = Shed.recvAll();
  EXPECT_NE(Resp.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos)
      << Resp;
  EXPECT_NE(Resp.find("Retry-After: 1"), std::string::npos) << Resp;
  EXPECT_GE(S.stats().ConnectionsShed, 1u);

  // Unblock the worker so stop() does not wait out the deadline.
  ASSERT_TRUE(Busy.send("Host: x\r\n\r\n"));
  S.stop();
}

//===----------------------------------------------------------------------===//
// Crash-safe atomic store save
//===----------------------------------------------------------------------===//

TEST(AtomicSave, ReplacesTheTargetAndLeavesNoTempBehind) {
  std::string Dir = tmpPath("atomic_dir");
  std::filesystem::remove_all(Dir);
  ASSERT_TRUE(std::filesystem::create_directory(Dir));
  std::string Path = Dir + "/triage.store";

  triage::TriageStore Store;
  Store.mergeRun(runWith({{10, 1}}));
  std::string Err;
  ASSERT_TRUE(Store.save(Path, &Err)) << Err;
  // Overwrite with more history: the rename replaces the old file.
  Store.mergeRun(runWith({{20, 3}}));
  ASSERT_TRUE(Store.save(Path, &Err)) << Err;

  // Exactly one file in the directory — no .tmp residue.
  size_t Files = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    EXPECT_EQ(E.path().string(), Path);
    ++Files;
  }
  EXPECT_EQ(Files, 1u);

  triage::TriageStore Back;
  ASSERT_TRUE(Back.load(Path, &Err)) << Err;
  EXPECT_EQ(Back.runCount(), 2u);
  EXPECT_NE(Back.find(sigOfVar(20)), nullptr);

  // A failing save (unwritable directory) reports cleanly and leaves no
  // partial files around.
  EXPECT_FALSE(Store.save(Dir + "/no/such/dir/x.store", &Err));
  EXPECT_FALSE(Err.empty());

  std::filesystem::remove_all(Dir);
}
