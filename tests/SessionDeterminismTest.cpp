//===- tests/SessionDeterminismTest.cpp - Parallel-lane determinism --------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The parallel-lane contract of api::AnalysisSession: for any NumWorkers,
// the SessionResult — minus the wall-clock/shape fields stripTiming zeroes
// — is byte-identical across runs and across worker counts, because every
// lane consumes the same event + decision stream in trace order no matter
// which thread drives it. Includes the racesTruncated path near the
// retention cap, and the 4-lane speedup demonstration (skipped on hosts
// without enough cores to show parallelism).
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/AnalysisSession.h"

#include "sampletrack/trace/SuiteGen.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

// The wall-clock speedup assertion is meaningless under ThreadSanitizer
// (5-15x serialized slowdown); the identity checks still run there.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMPLETRACK_UNDER_TSAN 1
#endif
#endif
#if !defined(SAMPLETRACK_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define SAMPLETRACK_UNDER_TSAN 1
#endif

using namespace sampletrack;

namespace {

const size_t WorkerCounts[] = {0, 1, 2, 8};

/// The acceptance lane set: full detection plus all three sampling engines.
const EngineKind FourLanes[] = {EngineKind::FastTrack,
                                EngineKind::SamplingNaive,
                                EngineKind::SamplingO, EngineKind::SamplingU};

api::SessionResult runWith(api::SessionConfig Cfg, const Trace &T,
                           size_t Workers) {
  Cfg.NumWorkers = Workers;
  return api::AnalysisSession(std::move(Cfg)).run(T);
}

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

TEST(SessionDeterminism, ResultIsIdenticalAcrossRunsAndWorkerCounts) {
  Trace T = generateSuiteTrace("bufwriter", 0.25, 3);

  api::SessionConfig Cfg;
  Cfg.Engines.assign(std::begin(FourLanes), std::end(FourLanes));
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = 0.03;
  Cfg.Seed = 7;
  Cfg.BatchSize = 777; // Deliberately odd: span boundaries must not matter.

  api::SessionResult Baseline = api::stripTiming(runWith(Cfg, T, 0));
  ASSERT_EQ(Baseline.Engines.size(), std::size(FourLanes));
  EXPECT_GT(Baseline.Engines[0].NumRaces, 0u); // FT found real work.

  for (size_t W : WorkerCounts) {
    SCOPED_TRACE("workers=" + std::to_string(W));
    // Across worker counts and across repeated runs of the same count.
    EXPECT_TRUE(api::stripTiming(runWith(Cfg, T, W)) == Baseline);
    EXPECT_TRUE(api::stripTiming(runWith(Cfg, T, W)) == Baseline);
  }
}

TEST(SessionDeterminism, WorkerCountSurvivesClampingAndIsReported) {
  Trace T = generateSuiteTrace("bufwriter", 0.1, 3);
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::SamplingO, EngineKind::SamplingU};

  // More workers than lanes clamps to the lane count; 0 stays sequential.
  EXPECT_EQ(runWith(Cfg, T, 0).NumWorkers, 0u);
  EXPECT_EQ(runWith(Cfg, T, 1).NumWorkers, 1u);
  EXPECT_EQ(runWith(Cfg, T, 8).NumWorkers, 2u);
}

TEST(SessionDeterminism, TruncatedRaceListsStayIdenticalUnderConcurrency) {
  // More distinct racy locations than the sink capacity, plus heavy
  // duplicate traffic on the stored ones: the sink caps distinct
  // signatures while RacesDeclared keeps counting. The stored exemplars,
  // the truncation flag, the overflow counters and the merged triage
  // summary must not depend on the worker count.
  const size_t Cap = 128;
  const size_t NumVars = 512;
  Trace T(3, 0, NumVars);
  for (size_t Round = 0; Round < 3; ++Round)
    for (size_t V = 0; V < NumVars; ++V) {
      T.write(1, V, /*Marked=*/true);
      T.write(2, V, /*Marked=*/true);
    }

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingNaive};
  Cfg.Sampling = api::SamplerKind::Marked;
  Cfg.TriageCapacity = Cap;

  api::SessionResult Baseline = api::stripTiming(runWith(Cfg, T, 0));
  const api::EngineRun &Ft = Baseline.Engines.front();
  ASSERT_TRUE(Ft.RacesTruncated);
  ASSERT_EQ(Ft.Races.size(), Cap);
  ASSERT_EQ(Ft.DistinctRaces, Cap);
  ASSERT_GT(Ft.NumRaces, Cap);
  ASSERT_TRUE(Baseline.Triage.Capped);

  for (size_t W : WorkerCounts) {
    SCOPED_TRACE("workers=" + std::to_string(W));
    api::SessionResult R = api::stripTiming(runWith(Cfg, T, W));
    EXPECT_TRUE(R == Baseline);
  }
}

TEST(SessionDeterminism, FourLaneParallelSpeedupOnFig5bWorkload) {
  // The acceptance benchmark: FT + ST + SO + SU over one trace, NumWorkers
  // 4 vs 0, expecting >= 2x on a host with >= 4 usable cores. The wall
  // clock is the only thing allowed to differ — the results must still be
  // byte-identical. Hosts without the cores (CI shards, laptops on
  // battery) verify identity only.
  const unsigned Cores = std::thread::hardware_concurrency();

  // "bufwriter" at this scale is the same workload shape the fig5b harness
  // replays offline (see bench_fig5b_overhead --workers).
  Trace T = generateSuiteTrace("bufwriter", 1.0, 5);

  api::SessionConfig Cfg;
  Cfg.Engines.assign(std::begin(FourLanes), std::end(FourLanes));
  Cfg.Sampling = api::SamplerKind::Always; // All lanes fully loaded.

  auto Measure = [&](size_t Workers, api::SessionResult &Out) {
    // Best-of-3 tames scheduler noise without hiding real overhead.
    uint64_t Best = ~uint64_t(0);
    for (int Rep = 0; Rep < 3; ++Rep) {
      uint64_t T0 = nowNanos();
      Out = runWith(Cfg, T, Workers);
      Best = std::min(Best, nowNanos() - T0);
    }
    return Best;
  };

  api::SessionResult Seq, Par;
  uint64_t SeqNanos = Measure(0, Seq);
  uint64_t ParNanos = Measure(4, Par);

  EXPECT_TRUE(api::stripTiming(Par) == api::stripTiming(Seq));

#ifdef SAMPLETRACK_UNDER_TSAN
  GTEST_SKIP() << "under ThreadSanitizer; wall-clock speedup is not "
                  "meaningful (identity verified above)";
#endif
  if (Cores < 4)
    GTEST_SKIP() << "only " << Cores
                 << " hardware threads; speedup needs >= 4";
  double Speedup = static_cast<double>(SeqNanos) /
                   static_cast<double>(std::max<uint64_t>(ParNanos, 1));
  RecordProperty("speedup", std::to_string(Speedup));
  EXPECT_GE(Speedup, 2.0) << "sequential " << SeqNanos << "ns vs parallel "
                          << ParNanos << "ns";
}
