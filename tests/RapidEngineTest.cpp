//===- tests/RapidEngineTest.cpp - Offline engine plumbing -----------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/rapid/Engine.h"

#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

using namespace sampletrack;
using namespace sampletrack::rapid;

namespace {

Trace smallTrace(uint64_t Seed) {
  GenConfig C;
  C.NumThreads = 4;
  C.NumLocks = 4;
  C.NumEvents = 5000;
  C.Seed = Seed;
  return generateWorkload(C);
}

} // namespace

TEST(RapidEngine, MarkTraceIsDeterministicAndRateAccurate) {
  Trace A = smallTrace(1), B = smallTrace(1);
  markTrace(A, 0.1, 42);
  markTrace(B, 0.1, 42);
  ASSERT_EQ(A.countMarked(), B.countMarked());
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_EQ(A[I].Marked, B[I].Marked) << "event " << I;

  size_t Accesses = A.countKind(OpKind::Read) + A.countKind(OpKind::Write);
  double Observed = static_cast<double>(A.countMarked()) / Accesses;
  EXPECT_NEAR(Observed, 0.1, 0.03);

  Trace C = smallTrace(1);
  markTrace(C, 0.1, 43);
  bool Differs = false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Marked != C[I].Marked)
      Differs = true;
  EXPECT_TRUE(Differs) << "different seeds must give different sample sets";
}

TEST(RapidEngine, MarkTraceAtFullRateMarksEveryAccess) {
  Trace T = smallTrace(2);
  markTrace(T, 1.0, 0);
  for (const Event &E : T)
    EXPECT_EQ(E.Marked, isAccess(E.Kind));
}

TEST(RapidEngine, RunResultFieldsAreConsistent) {
  Trace T = smallTrace(3);
  RunResult R = runEngine(T, EngineKind::SamplingO, 0.05, 9);
  EXPECT_EQ(R.Engine, "SO");
  EXPECT_EQ(R.Stats.Events, T.size());
  EXPECT_EQ(R.Stats.SampledAccesses, R.SampleSize);
  EXPECT_EQ(R.NumRaces, R.Stats.RacesDeclared);
  EXPECT_GT(R.WallNanos, 0u);
  EXPECT_LE(R.NumRacyLocations, R.NumRaces + 1);
}

TEST(RapidEngine, RunEngineAtFullRateUsesAlwaysSampler) {
  Trace T = smallTrace(4);
  RunResult R = runEngine(T, EngineKind::SamplingNaive, 1.0, 0);
  EXPECT_EQ(R.SamplerName, "always");
  size_t Accesses = T.countKind(OpKind::Read) + T.countKind(OpKind::Write);
  EXPECT_EQ(R.SampleSize, Accesses);
}

TEST(RapidEngine, IdenticalSeedsGiveIdenticalRunsAcrossEngines) {
  // The apples-to-apples requirement of appendix A.1: the same (rate,
  // seed) pair must present the identical sample set to different engines.
  Trace T = smallTrace(5);
  RunResult St = runEngine(T, EngineKind::SamplingNaive, 0.03, 7);
  RunResult So = runEngine(T, EngineKind::SamplingO, 0.03, 7);
  EXPECT_EQ(St.SampleSize, So.SampleSize);
  EXPECT_EQ(St.NumRaces, So.NumRaces);
  EXPECT_EQ(St.NumRacyLocations, So.NumRacyLocations);
}
