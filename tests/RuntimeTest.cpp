//===- tests/RuntimeTest.cpp - Online runtime tests ------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency tests for the online runtime: seeded races must be found,
/// well-locked programs must stay race-free under every analysis mode, and
/// metric invariants must hold under multithreaded stress.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/runtime/Runtime.h"

#include "sampletrack/support/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace sampletrack;
using namespace sampletrack::rt;

namespace {

Config makeConfig(Mode M, double Rate = 1.0, uint64_t Seed = 1) {
  Config C;
  C.AnalysisMode = M;
  C.SamplingRate = Rate;
  C.Seed = Seed;
  C.MaxThreads = 16;
  return C;
}

class AllAnalysisModes : public ::testing::TestWithParam<Mode> {};

} // namespace

TEST_P(AllAnalysisModes, SeededRaceIsDetected) {
  Mode M = GetParam();
  Runtime Rt(makeConfig(M));
  uint64_t Shared = 0;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Shared);

  ThreadId A = Rt.registerThread();
  ThreadId B = Rt.registerThread();
  Rt.onFork(0, A);
  Rt.onFork(0, B);
  std::thread Ta([&] {
    Rt.onWrite(A, Addr);
    reinterpret_cast<std::atomic<uint64_t> &>(Shared).fetch_add(1);
  });
  std::thread Tb([&] {
    Rt.onWrite(B, Addr);
    reinterpret_cast<std::atomic<uint64_t> &>(Shared).fetch_add(1);
  });
  Ta.join();
  Tb.join();
  Rt.onJoin(0, A);
  Rt.onJoin(0, B);

  if (M == Mode::NT || M == Mode::ET) {
    EXPECT_EQ(Rt.raceCount(), 0u);
  } else {
    // The two writes are HB-unordered; whichever hook runs second must
    // declare the race (sampling modes run at rate 1.0 here).
    EXPECT_GE(Rt.raceCount(), 1u);
    EXPECT_EQ(Rt.racyLocationCount(), 1u);
  }
}

TEST_P(AllAnalysisModes, LockedCounterIsRaceFree) {
  Mode M = GetParam();
  Runtime Rt(makeConfig(M));
  Mutex Lock(Rt);
  uint64_t Counter = 0;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Counter);

  constexpr size_t NumWorkers = 6;
  constexpr size_t Iters = 400;
  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < NumWorkers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  std::vector<std::thread> Workers;
  for (size_t W = 0; W < NumWorkers; ++W) {
    Workers.emplace_back([&, W] {
      for (size_t I = 0; I < Iters; ++I) {
        Lock.lock(Tids[W]);
        Rt.onRead(Tids[W], Addr);
        uint64_t V = Counter;
        Rt.onWrite(Tids[W], Addr);
        Counter = V + 1;
        Lock.unlock(Tids[W]);
      }
    });
  }
  for (size_t W = 0; W < NumWorkers; ++W) {
    Workers[W].join();
    Rt.onJoin(0, Tids[W]);
  }

  EXPECT_EQ(Counter, NumWorkers * Iters);
  EXPECT_EQ(Rt.raceCount(), 0u) << "false positive in mode "
                                << modeName(M);
}

TEST_P(AllAnalysisModes, StressManyLocksManyThreadsNoFalsePositives) {
  Mode M = GetParam();
  Runtime Rt(makeConfig(M, /*Rate=*/0.5, /*Seed=*/42));
  constexpr size_t NumLocks = 8;
  constexpr size_t NumWorkers = 8;
  constexpr size_t Iters = 500;

  std::vector<std::unique_ptr<Mutex>> Locks;
  for (size_t L = 0; L < NumLocks; ++L)
    Locks.push_back(std::make_unique<Mutex>(Rt));
  // One data word per lock; accessed only under its lock.
  std::vector<uint64_t> Data(NumLocks, 0);

  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < NumWorkers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  std::vector<std::thread> Workers;
  for (size_t W = 0; W < NumWorkers; ++W) {
    Workers.emplace_back([&, W] {
      SplitMix64 Rng(W * 7 + 1);
      for (size_t I = 0; I < Iters; ++I) {
        size_t L = Rng.nextBelow(NumLocks);
        Locks[L]->lock(Tids[W]);
        uint64_t Addr = reinterpret_cast<uint64_t>(&Data[L]);
        Rt.onRead(Tids[W], Addr);
        uint64_t V = Data[L];
        Rt.onWrite(Tids[W], Addr);
        Data[L] = V + 1;
        Locks[L]->unlock(Tids[W]);
      }
    });
  }
  for (size_t W = 0; W < NumWorkers; ++W) {
    Workers[W].join();
    Rt.onJoin(0, Tids[W]);
  }

  EXPECT_EQ(Rt.raceCount(), 0u);
  uint64_t Sum = 0;
  for (uint64_t V : Data)
    Sum += V;
  EXPECT_EQ(Sum, NumWorkers * Iters);

  Metrics Agg = Rt.aggregatedMetrics();
  if (M != Mode::NT && M != Mode::ET) {
    EXPECT_EQ(Agg.AcquiresSkipped + Agg.AcquiresProcessed,
              Agg.AcquiresTotal);
    EXPECT_LE(Agg.ReleasesSkipped + Agg.ReleasesProcessed,
              Agg.ReleasesTotal);
    EXPECT_GE(Agg.AcquiresTotal, NumWorkers * Iters);
  }
  if (M == Mode::SO) {
    EXPECT_LE(Agg.DeepCopies, Agg.ShallowCopies + NumWorkers);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, AllAnalysisModes,
                         ::testing::Values(Mode::NT, Mode::ET, Mode::FT,
                                           Mode::ST, Mode::SU, Mode::SO),
                         [](const ::testing::TestParamInfo<Mode> &Info) {
                           return modeName(Info.param);
                         });

TEST(RuntimeSampling, RateZeroNeverChecksAccesses) {
  Runtime Rt(makeConfig(Mode::SO, /*Rate=*/0.0));
  uint64_t X = 0;
  ThreadId A = Rt.registerThread();
  Rt.onFork(0, A);
  for (int I = 0; I < 100; ++I)
    Rt.onWrite(A, reinterpret_cast<uint64_t>(&X));
  Rt.onJoin(0, A);
  Metrics Agg = Rt.aggregatedMetrics();
  EXPECT_EQ(Agg.SampledAccesses, 0u);
  EXPECT_EQ(Agg.RaceChecks, 0u);
  EXPECT_EQ(Rt.raceCount(), 0u);
}

TEST(RuntimeSampling, SamplingSkipsReduceSyncWork) {
  // At a tiny sampling rate, SU must skip most acquire joins in a
  // ping-pong pattern (the Fig. 6(b) effect, online).
  Runtime Rt(makeConfig(Mode::SU, /*Rate=*/0.001, /*Seed=*/7));
  Mutex Lock(Rt);
  uint64_t X = 0;
  ThreadId A = Rt.registerThread();
  ThreadId B = Rt.registerThread();
  Rt.onFork(0, A);
  Rt.onFork(0, B);
  auto Work = [&](ThreadId T) {
    for (int I = 0; I < 2000; ++I) {
      Lock.lock(T);
      Rt.onRead(T, reinterpret_cast<uint64_t>(&X));
      Lock.unlock(T);
    }
  };
  std::thread Ta([&] { Work(A); });
  std::thread Tb([&] { Work(B); });
  Ta.join();
  Tb.join();
  Rt.onJoin(0, A);
  Rt.onJoin(0, B);

  Metrics Agg = Rt.aggregatedMetrics();
  EXPECT_GT(Agg.AcquiresSkipped, Agg.AcquiresTotal / 2)
      << "expected >50% of acquires skipped at 0.1% sampling";
}
