//===- tests/BenchGateTest.cpp - Perf regression gate tests ---------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The perfgate contract on synthetic trajectory documents: identical
// documents pass; a timing blow-up, a throughput collapse, a drifted
// deterministic counter and a silently dropped row each fail naming the
// metric; counters are skipped (not failed) when scale or seed differ or
// when exact-counter checking is off; the "profile" attachment and unknown
// metrics are ignored. The gate must also refuse documents that are not
// trajectories at all — a gate that cannot read its inputs must not pass.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/perfgate/PerfGate.h"

#include "sampletrack/support/Json.h"

#include <gtest/gtest.h>

using namespace sampletrack;
using namespace sampletrack::perfgate;

namespace {

/// A minimal two-row trajectory in the JsonReport schema.
std::string doc(uint64_t WallNanos, double NsPerEvent, uint64_t DeepCopies,
                double UploadsPerSec, double Scale = 0.25,
                uint64_t Seed = 1, bool IncludeSecondRow = true,
                bool AttachProfile = false) {
  std::string D = "{\"bench\": \"synthetic\", \"scale\": " +
                  std::to_string(Scale) +
                  ", \"seed\": " + std::to_string(Seed) + ", \"rows\": [\n";
  D += "  {\"series\": \"bufwriter\", \"engine\": \"SO\", \"rate\": 0.03, "
       "\"events\": 1000, \"wallNanos\": " +
       std::to_string(WallNanos) +
       ", \"nsPerEvent\": " + std::to_string(NsPerEvent) +
       ", \"deepCopies\": " + std::to_string(DeepCopies) +
       ", \"mysteryMetric\": 42}";
  if (IncludeSecondRow)
    D += ",\n  {\"series\": \"ingest\", \"engine\": \"FT+SO\", \"rate\": 1, "
         "\"uploads\": 24, \"uploadsPerSec\": " +
         std::to_string(UploadsPerSec) + "}";
  D += "\n]";
  if (AttachProfile)
    D += ", \"profile\": [{\"path\": \"session\", \"count\": 1, "
         "\"inclusiveNanos\": 5, \"exclusiveNanos\": 5}]";
  D += "}";
  return D;
}

GateResult gate(const std::string &Baseline, const std::string &Fresh,
                Tolerances T = {}) {
  support::JsonValue B, F;
  std::string Err;
  EXPECT_TRUE(support::JsonValue::parse(Baseline, B, &Err)) << Err;
  EXPECT_TRUE(support::JsonValue::parse(Fresh, F, &Err)) << Err;
  GateResult R;
  EXPECT_TRUE(diffBenchJson(B, F, T, R, &Err)) << Err;
  return R;
}

bool hasRegression(const GateResult &R, const std::string &Metric) {
  for (const Finding &F : R.Regressions)
    if (F.Metric == Metric)
      return true;
  return false;
}

} // namespace

TEST(BenchGate, IdenticalDocumentsPass) {
  std::string D = doc(1000000, 100.0, 7, 5000.0);
  GateResult R = gate(D, D);
  EXPECT_TRUE(R.passed()) << render(R, "synthetic");
  EXPECT_EQ(R.RowsCompared, 2u);
  EXPECT_GT(R.MetricsCompared, 0u);
}

TEST(BenchGate, ProfileAttachmentAndUnknownMetricsAreSkippedNotGated) {
  // Baseline without profile vs fresh with one, and the nanosecond values
  // inside the profile wildly different from anything gated: still a pass.
  GateResult R = gate(doc(1000000, 100.0, 7, 5000.0),
                      doc(1000000, 100.0, 7, 5000.0, 0.25, 1, true,
                          /*AttachProfile=*/true));
  EXPECT_TRUE(R.passed()) << render(R, "synthetic");
}

TEST(BenchGate, TimingSlowdownFailsNamingTheMetric) {
  // 3x wallNanos against the default 1.6x tolerance.
  GateResult R =
      gate(doc(1000000, 100.0, 7, 5000.0), doc(3000000, 100.0, 7, 5000.0));
  EXPECT_FALSE(R.passed());
  EXPECT_TRUE(hasRegression(R, "wallNanos")) << render(R, "synthetic");
  EXPECT_FALSE(hasRegression(R, "nsPerEvent"));
  // The rendering names the bench and the metric for the CI log.
  std::string Log = render(R, "synthetic");
  EXPECT_NE(Log.find("PERF GATE FAILURE"), std::string::npos);
  EXPECT_NE(Log.find("wallNanos"), std::string::npos);

  // A generous tolerance absorbs the same slowdown.
  Tolerances Loose;
  Loose.TimingRatio = 4.0;
  EXPECT_TRUE(
      gate(doc(1000000, 100.0, 7, 5000.0), doc(3000000, 100.0, 7, 5000.0),
           Loose)
          .passed());
  // Getting faster is never a regression.
  EXPECT_TRUE(
      gate(doc(3000000, 300.0, 7, 5000.0), doc(1000000, 100.0, 7, 5000.0))
          .passed());
}

TEST(BenchGate, ThroughputCollapseFails) {
  // uploads/s dropping to a third against the default 1.6x tolerance.
  GateResult R =
      gate(doc(1000000, 100.0, 7, 6000.0), doc(1000000, 100.0, 7, 2000.0));
  EXPECT_FALSE(R.passed());
  EXPECT_TRUE(hasRegression(R, "uploadsPerSec")) << render(R, "synthetic");
  // Faster uploads pass.
  EXPECT_TRUE(
      gate(doc(1000000, 100.0, 7, 2000.0), doc(1000000, 100.0, 7, 6000.0))
          .passed());
}

TEST(BenchGate, CounterDriftFailsWhenScaleAndSeedMatch) {
  GateResult R =
      gate(doc(1000000, 100.0, 7, 5000.0), doc(1000000, 100.0, 8, 5000.0));
  EXPECT_FALSE(R.passed());
  EXPECT_TRUE(hasRegression(R, "deepCopies")) << render(R, "synthetic");
}

TEST(BenchGate, CountersAreSkippedOnScaleOrSeedMismatchOrWhenDisabled) {
  // Different scale: the counter comparison is meaningless, only ratios
  // hold — drifted deepCopies must NOT fail.
  EXPECT_TRUE(gate(doc(1000000, 100.0, 7, 5000.0, 0.25),
                   doc(1000000, 100.0, 900, 5000.0, 1.0))
                  .passed());
  // Different seed, same story.
  EXPECT_TRUE(gate(doc(1000000, 100.0, 7, 5000.0, 0.25, 1),
                   doc(1000000, 100.0, 900, 5000.0, 0.25, 2))
                  .passed());
  // Same scale+seed but exact counters off.
  Tolerances NoCounters;
  NoCounters.ExactCounters = false;
  EXPECT_TRUE(gate(doc(1000000, 100.0, 7, 5000.0),
                   doc(1000000, 100.0, 900, 5000.0), NoCounters)
                  .passed());
}

TEST(BenchGate, DroppedBaselineRowIsARegression) {
  GateResult R = gate(doc(1000000, 100.0, 7, 5000.0),
                      doc(1000000, 100.0, 7, 5000.0, 0.25, 1,
                          /*IncludeSecondRow=*/false));
  EXPECT_FALSE(R.passed()) << "a silently dropped measurement must fail";
  // Fresh-only rows are fine (new measurements land before baselines).
  GateResult R2 = gate(doc(1000000, 100.0, 7, 5000.0, 0.25, 1,
                           /*IncludeSecondRow=*/false),
                       doc(1000000, 100.0, 7, 5000.0));
  EXPECT_TRUE(R2.passed()) << render(R2, "synthetic");
  EXPECT_FALSE(R2.Notes.empty());
}

TEST(BenchGate, StructurallyInvalidDocumentsAreRefused) {
  support::JsonValue B, F;
  std::string Err;
  ASSERT_TRUE(support::JsonValue::parse("{\"not\": \"a trajectory\"}", B,
                                        &Err));
  ASSERT_TRUE(
      support::JsonValue::parse(doc(1000000, 100.0, 7, 5000.0), F, &Err));
  GateResult R;
  EXPECT_FALSE(diffBenchJson(B, F, Tolerances{}, R, &Err));
  EXPECT_FALSE(Err.empty());

  GateResult R2;
  EXPECT_FALSE(gateFiles("/nonexistent/baseline.json",
                         "/nonexistent/fresh.json", Tolerances{}, R2, &Err));
}
