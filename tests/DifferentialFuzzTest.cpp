//===- tests/DifferentialFuzzTest.cpp - Randomized differential testing ----==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heavier randomized differential testing than the targeted equivalence
/// suites: many random trace shapes (including fork/join trees, atomics and
/// degenerate shapes) x many samplers x all engines, checking the Lemma 7/8
/// verdict equality and the oracle everywhere, plus the session-level
/// harness: an api::AnalysisSession fan-out (sequential or with parallel
/// lane workers) must match standalone per-engine runs lane-by-lane.
/// Complements the directed tests with breadth.
///
/// Case counts scale with the SAMPLETRACK_FUZZ_CASES environment variable
/// (the `ctest -L differential` label group): CI smoke keeps the default,
/// nightly sets it high to go deep.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/api/AnalysisSession.h"
#include "sampletrack/detectors/DetectorFactory.h"
#include "sampletrack/detectors/HBClosureOracle.h"
#include "sampletrack/explore/Scheduler.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/sampling/PeriodSamplers.h"
#include "sampletrack/support/simd/ClockKernels.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace sampletrack;

namespace {

/// Case count for one fuzz loop: \p Default, unless SAMPLETRACK_FUZZ_CASES
/// overrides it (nightly CI runs the same binaries much deeper).
int fuzzCases(int Default) {
  if (const char *V = std::getenv("SAMPLETRACK_FUZZ_CASES"))
    return std::max(1, std::atoi(V));
  return Default;
}

/// Random trace with a shape drawn from several families, some of them
/// degenerate on purpose.
Trace randomTrace(SplitMix64 &Rng) {
  switch (Rng.nextBelow(8)) {
  case 0: {
    GenConfig C;
    C.NumThreads = 2 + Rng.nextBelow(6);
    C.NumLocks = 1 + Rng.nextBelow(8);
    C.NumVars = 8 + Rng.nextBelow(64);
    C.NumEvents = 100 + Rng.nextBelow(700);
    C.AccessFraction = 0.1 + Rng.nextDouble() * 0.8;
    C.UnprotectedFraction = Rng.nextDouble() * 0.2;
    C.EmptyCsFraction = Rng.nextDouble() * 0.6;
    C.SelfReacquireBias = Rng.nextDouble();
    C.MaxNesting = 1 + Rng.nextBelow(3);
    C.MeanBurst = 1 + Rng.nextBelow(12);
    C.Seed = Rng.next();
    return generateWorkload(C);
  }
  case 1:
    return generateProducerConsumer(1 + Rng.nextBelow(3),
                                    1 + Rng.nextBelow(3),
                                    10 + Rng.nextBelow(60), Rng.next());
  case 2:
    return generateForkJoin(1 + Rng.nextBelow(3), 2 + Rng.nextBelow(12),
                            Rng.next(), Rng.nextBool(0.5));
  case 3:
    return generateBarrierRounds(2 + Rng.nextBelow(4), 2 + Rng.nextBelow(8),
                                 2 + Rng.nextBelow(8), Rng.next());
  case 4:
    return generateLockBarrierRounds(2 + Rng.nextBelow(4),
                                     2 + Rng.nextBelow(8),
                                     2 + Rng.nextBelow(8), Rng.next());
  case 5:
    return generatePipeline(1 + Rng.nextBelow(3), 1 + Rng.nextBelow(3),
                            10 + Rng.nextBelow(80), Rng.next());
  case 6:
    return generatePingPong(2 + Rng.nextBelow(4), 1 + Rng.nextBelow(4),
                            10 + Rng.nextBelow(60), Rng.next());
  default: {
    // Degenerate: single thread, or one variable hammered by everyone.
    Trace T;
    if (Rng.nextBool(0.5)) {
      for (int I = 0; I < 60; ++I) {
        T.acquire(0, 0);
        T.write(0, 0);
        T.release(0, 0);
      }
    } else {
      size_t Threads = 2 + Rng.nextBelow(4);
      for (int I = 0; I < 120; ++I) {
        ThreadId Tid = static_cast<ThreadId>(Rng.nextBelow(Threads));
        if (Rng.nextBool(0.7))
          T.write(Tid, 0);
        else
          T.read(Tid, 0);
      }
    }
    return T;
  }
  }
}

/// Marks T using a randomly chosen sampler family.
void randomMark(Trace &T, SplitMix64 &Rng) {
  uint64_t Seed = Rng.next();
  std::unique_ptr<Sampler> S;
  switch (Rng.nextBelow(5)) {
  case 0:
    S = std::make_unique<BernoulliSampler>(Rng.nextDouble(), Seed);
    break;
  case 1:
    S = std::make_unique<PeriodicSampler>(1 + Rng.nextBelow(17));
    break;
  case 2:
    S = std::make_unique<PacerSampler>(0.1 + Rng.nextDouble() * 0.8,
                                       1 + Rng.nextBelow(40), Seed);
    break;
  case 3:
    S = std::make_unique<BudgetSampler>(1 + Rng.nextBelow(50),
                                        std::max<size_t>(1, T.size() / 2),
                                        Seed);
    break;
  default:
    S = std::make_unique<ColdRegionSampler>(1 + Rng.nextBelow(8), 0.01,
                                            Seed);
    break;
  }
  for (size_t I = 0; I < T.size(); ++I)
    if (isAccess(T[I].Kind))
      T[I].Marked = S->shouldSample(T[I]);
}

/// Zeroes the one counter pooling legitimately moves (free-list hits), so
/// pooled and unpooled results can be compared bit-for-bit otherwise.
api::SessionResult stripPoolHits(api::SessionResult R) {
  for (api::EngineRun &E : R.Engines)
    E.Stats.PoolHits = 0;
  return R;
}

std::vector<size_t> declared(const Trace &T, EngineKind K) {
  std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
  MarkedSampler S;
  rapid::run(T, *D, S);
  std::vector<size_t> Out;
  for (const RaceReport &R : D->races())
    Out.push_back(R.EventIndex);
  return Out;
}

/// The engine's warehouse view of the trace: signatures, hit counts,
/// exemplars.
triage::TriageSummary declaredSummary(const Trace &T, EngineKind K) {
  std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
  MarkedSampler S;
  rapid::run(T, *D, S);
  return D->raceSink().summary();
}

/// What the oracle's full declaration list dedups to — the reference the
/// engines' sinks must reproduce signature-by-signature, hit-by-hit.
triage::TriageSummary oracleSummary(const Trace &T,
                                    const std::vector<size_t> &Declared) {
  triage::RaceSink Sink(Declared.size() + 1);
  for (size_t I : Declared)
    Sink.insert(RaceReport{I, T[I].Tid, T[I].var(), T[I].Kind});
  return Sink.summary();
}

} // namespace

TEST(DifferentialFuzz, AllEnginesAgreeOnHundredsOfRandomCases) {
  SplitMix64 Rng(20250613);
  const int Cases = fuzzCases(250);
  for (int Case = 0; Case < Cases; ++Case) {
    Trace T = randomTrace(Rng);
    ASSERT_TRUE(T.validate()) << "case " << Case;
    randomMark(T, Rng);

    HBClosureOracle Oracle(T);
    // Engines warehouse duplicates; dedup the oracle's list identically.
    std::vector<size_t> Declarations =
        Oracle.declaredRaces(/*MarkedOnly=*/true);
    std::vector<size_t> Expected = dedupDeclaredRaces(T, Declarations);
    ASSERT_EQ(Expected, declared(T, EngineKind::SamplingNaive))
        << "ST diverged, case " << Case;
    ASSERT_EQ(Expected, declared(T, EngineKind::SamplingU))
        << "SU diverged, case " << Case;
    ASSERT_EQ(Expected, declared(T, EngineKind::SamplingO))
        << "SO diverged, case " << Case;
    ASSERT_EQ(Expected, declared(T, EngineKind::SamplingONoEpochOpt))
        << "SO-noepoch diverged, case " << Case;
    // Beyond the exemplar events: the whole warehouse view (signatures,
    // hit counts, exemplars) must match what the oracle's declarations
    // dedup to.
    ASSERT_TRUE(oracleSummary(T, Declarations) ==
                declaredSummary(T, EngineKind::SamplingO))
        << "SO warehouse summary diverged from oracle, case " << Case;
  }
}

TEST(DifferentialFuzz, FullEnginesMatchOracleOnRandomCases) {
  SplitMix64 Rng(424242);
  const int Cases = fuzzCases(120);
  for (int Case = 0; Case < Cases; ++Case) {
    Trace T = randomTrace(Rng);
    HBClosureOracle Oracle(T);
    ASSERT_EQ(dedupDeclaredRaces(T, Oracle.declaredRaces(/*MarkedOnly=*/false)),
              declared(T, EngineKind::Djit))
        << "Djit+ diverged, case " << Case;
  }
}

//===----------------------------------------------------------------------===//
// Session-level differential harness: a K-lane AnalysisSession (sequential
// or parallel) vs K standalone single-engine runs over the same seed.
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Hot-path axes: the pooled copy-on-write allocator, the devirtualized
// batch dispatch and the VarId-sharded executor must be invisible — every
// engine, at every sampling rate, batch geometry, worker count and shard
// count, must produce the result of the unsharded unpooled per-event
// reference path, bit-for-bit (modulo timing and PoolHits, the
// free-list-vs-allocator counter).
//===----------------------------------------------------------------------===//

TEST(DifferentialFuzz, PooledAndBatchedPathsMatchPerEventUnpooled) {
  SplitMix64 Rng(31415926535ull);
  const std::vector<EngineKind> Kinds = allEngineKinds();
  const double Rates[] = {0.003, 0.03, 1.0};
  const size_t WorkerAxis[] = {0, 1, 2, 8};
  const size_t ShardAxis[] = {0, 2, 4, 8};
  const int Cases = fuzzCases(15);
  for (int Case = 0; Case < Cases; ++Case) {
    Trace T = randomTrace(Rng);
    ASSERT_TRUE(T.validate()) << "case " << Case;

    api::SessionConfig Base;
    Base.Engines = Kinds;
    Base.Sampling = api::SamplerKind::Bernoulli;
    Base.SamplingRate = Rates[Case % std::size(Rates)];
    Base.Seed = Rng.next();
    Base.BatchSize = 1 + Rng.nextBelow(300);

    // Reference: sequential, unsharded, per-event dispatch, pooling off —
    // the paths this PR did not touch.
    api::SessionConfig RefCfg = Base;
    RefCfg.PerEventDispatch = true;
    RefCfg.PoolingEnabled = false;
    api::SessionResult Ref =
        stripPoolHits(api::stripTiming(api::AnalysisSession(RefCfg).run(T)));
    ASSERT_EQ(Ref.Engines.size(), Kinds.size()) << "case " << Case;

    for (size_t W : WorkerAxis) {
      const struct {
        bool Pooling, PerEvent;
        const char *Name;
      } Variants[] = {
          {true, false, "pooled+batched"},   // The production hot path.
          {true, true, "pooled+per-event"},  // Isolates the pool.
          {false, false, "unpooled+batched"} // Isolates batch dispatch.
      };
      for (const auto &V : Variants) {
        for (size_t Shards : ShardAxis) {
          api::SessionConfig Cfg = Base;
          Cfg.PoolingEnabled = V.Pooling;
          Cfg.PerEventDispatch = V.PerEvent;
          Cfg.NumWorkers = W;
          Cfg.Shards = Shards;
          api::SessionResult R = stripPoolHits(
              api::stripTiming(api::AnalysisSession(Cfg).run(T)));
          // Lane-by-lane first (readable failures), then the whole result.
          ASSERT_EQ(R.Engines.size(), Ref.Engines.size());
          for (size_t I = 0; I < R.Engines.size(); ++I) {
            SCOPED_TRACE(std::string(V.Name) + ", workers=" +
                         std::to_string(W) + ", shards=" +
                         std::to_string(Shards) + ", " +
                         std::string(engineKindName(Kinds[I])) + ", case " +
                         std::to_string(Case));
            EXPECT_EQ(R.Engines[I].Races, Ref.Engines[I].Races);
            EXPECT_EQ(R.Engines[I].Stats, Ref.Engines[I].Stats);
            EXPECT_EQ(R.Engines[I].RacesTruncated,
                      Ref.Engines[I].RacesTruncated);
          }
          // The triage axis: the deduplicated signature set (and its hit
          // counts) must be bit-identical across every worker count, shard
          // count, pooling mode and dispatch path — the warehouse's
          // stability contract.
          ASSERT_EQ(R.Triage.Entries.size(), Ref.Triage.Entries.size())
              << V.Name << ", workers=" << W << ", shards=" << Shards
              << ", case " << Case;
          for (size_t I = 0; I < R.Triage.Entries.size(); ++I)
            EXPECT_TRUE(R.Triage.Entries[I] == Ref.Triage.Entries[I])
                << V.Name << ", workers=" << W << ", shards=" << Shards
                << ", case " << Case << ": triage entry " << I
                << " diverged (signature "
                << triage::RaceSignature{R.Triage.Entries[I].Signature}.hex()
                << " vs "
                << triage::RaceSignature{Ref.Triage.Entries[I].Signature}.hex()
                << ")";
          EXPECT_TRUE(R == Ref) << V.Name << ", workers=" << W
                                << ", shards=" << Shards << ", case " << Case;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// The schedule axis: every interleaving the explorer emits is just a trace,
// so the whole hot-path matrix (pooling x dispatch x workers) must stay
// bit-identical on *re-scheduled* executions too, not only on the original
// interleavings the generators produce.
//===----------------------------------------------------------------------===//

TEST(DifferentialFuzz, ExploredSchedulesReplayBitIdenticalAcrossHotPathAxes) {
  SplitMix64 Rng(271828182845ull);
  const std::vector<EngineKind> Kinds = allEngineKinds();
  const double Rates[] = {0.003, 0.03, 1.0};
  const size_t WorkerAxis[] = {0, 1, 2, 8};
  const int Cases = fuzzCases(5);
  for (int Case = 0; Case < Cases; ++Case) {
    Trace Original = randomTrace(Rng);
    ASSERT_TRUE(Original.validate()) << "case " << Case;
    explore::Workload W = explore::Workload::fromTrace(Original);

    // Re-interleave the projected programs: each emitted schedule is a new
    // execution of the same program, fed through the full axis matrix.
    explore::ExploreConfig EC;
    EC.Mode = Case % 2 ? explore::ExploreMode::Pct
                       : explore::ExploreMode::Random;
    EC.Seed = Rng.next();
    EC.MaxSchedules = 3;
    explore::Scheduler Sched(W, EC);
    explore::Schedule Sch;
    while (Sched.next(Sch)) {
      Trace T = explore::Scheduler::materialize(W, Sch.Choices);
      ASSERT_TRUE(T.validate()) << "case " << Case << ", schedule "
                                << Sch.Index;

      api::SessionConfig Base;
      Base.Engines = Kinds;
      Base.Sampling = api::SamplerKind::Bernoulli;
      Base.SamplingRate = Rates[Case % std::size(Rates)];
      Base.Seed = Rng.next();
      Base.BatchSize = 1 + Rng.nextBelow(300);

      api::SessionConfig RefCfg = Base;
      RefCfg.PerEventDispatch = true;
      RefCfg.PoolingEnabled = false;
      api::SessionResult Ref = stripPoolHits(
          api::stripTiming(api::AnalysisSession(RefCfg).run(T)));

      for (size_t Workers : WorkerAxis) {
        for (bool Pooling : {true, false}) {
          api::SessionConfig Cfg = Base;
          Cfg.PoolingEnabled = Pooling;
          Cfg.PerEventDispatch = false; // The production batch path.
          Cfg.NumWorkers = Workers;
          api::SessionResult R = stripPoolHits(
              api::stripTiming(api::AnalysisSession(Cfg).run(T)));
          EXPECT_TRUE(R == Ref)
              << "case " << Case << ", schedule " << Sch.Index
              << ", workers=" << Workers
              << (Pooling ? ", pooled" : ", unpooled");
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// The profiling axis: SessionConfig::ProfilingEnabled may add spans to the
// result but must never change it — every analysis field must be
// bit-identical with profiling on vs off, across worker and shard counts.
//===----------------------------------------------------------------------===//

TEST(DifferentialFuzz, ProfilingOnOffBitIdentical) {
  SplitMix64 Rng(16180339887ull);
  const std::vector<EngineKind> Kinds = allEngineKinds();
  const double Rates[] = {0.003, 0.03, 1.0};
  const int Cases = fuzzCases(15);
  for (int Case = 0; Case < Cases; ++Case) {
    Trace T = randomTrace(Rng);
    ASSERT_TRUE(T.validate()) << "case " << Case;

    api::SessionConfig Base;
    Base.Engines = Kinds;
    Base.Sampling = api::SamplerKind::Bernoulli;
    Base.SamplingRate = Rates[Case % std::size(Rates)];
    Base.Seed = Rng.next();
    Base.BatchSize = 1 + Rng.nextBelow(300);

    for (size_t Workers : {size_t(0), size_t(2)})
      for (size_t Shards : {size_t(0), size_t(4)}) {
        api::SessionConfig Off = Base;
        Off.NumWorkers = Workers;
        Off.Shards = Shards;
        api::SessionConfig On = Off;
        On.ProfilingEnabled = true;

        api::SessionResult ROff =
            api::stripTiming(api::AnalysisSession(Off).run(T));
        api::SessionResult ROn =
            api::stripTiming(api::AnalysisSession(On).run(T));
        ASSERT_TRUE(ROff.Profile.empty());
        EXPECT_FALSE(ROn.Profile.empty());
        // The profile is the one field profiling may add; everything the
        // analysis computed must be untouched by the measurement.
        ROn.Profile = prof::Report();
        EXPECT_TRUE(ROn == ROff)
            << "case " << Case << ", workers=" << Workers
            << ", shards=" << Shards;
      }
  }
}

TEST(DifferentialFuzz, SessionFanOutMatchesStandaloneRunsLaneByLane) {
  SplitMix64 Rng(987651234);
  const std::vector<EngineKind> Kinds = allEngineKinds();
  // The paper's sweep rates: 0.3%, 3%, and 100% (where Bernoulli degrades
  // to always-sample so full detection is exercised too).
  const double Rates[] = {0.003, 0.03, 1.0};
  const int Cases = fuzzCases(45);
  for (int Case = 0; Case < Cases; ++Case) {
    Trace T = randomTrace(Rng);
    ASSERT_TRUE(T.validate()) << "case " << Case;
    const uint64_t Seed = Rng.next();
    const double Rate = Rates[Case % std::size(Rates)];

    api::SessionConfig Cfg;
    Cfg.Engines = Kinds;
    Cfg.Sampling = api::SamplerKind::Bernoulli;
    Cfg.SamplingRate = Rate;
    Cfg.Seed = Seed;
    // Rotate batch geometry and worker count so span boundaries and the
    // parallel hand-off both get fuzzed, not just the defaults.
    Cfg.BatchSize = 1 + Rng.nextBelow(300);
    Cfg.NumWorkers = Case % 4;
    api::SessionResult Fan = api::AnalysisSession(Cfg).run(T);

    ASSERT_EQ(Fan.Engines.size(), Kinds.size()) << "case " << Case;
    EXPECT_EQ(Fan.EventsProcessed, T.size()) << "case " << Case;

    for (size_t I = 0; I < Kinds.size(); ++I) {
      SCOPED_TRACE(std::string(engineKindName(Kinds[I])) + ", case " +
                   std::to_string(Case));
      // Standalone reference: fresh detector, fresh decision stream from
      // the same seed (rate >= 1 degrades to always, as the session does).
      std::unique_ptr<Detector> D = createDetector(Kinds[I], T.numThreads());
      std::unique_ptr<Sampler> S;
      if (Rate >= 1.0)
        S = std::make_unique<AlwaysSampler>();
      else
        S = std::make_unique<BernoulliSampler>(Rate, Seed);
      rapid::RunResult Legacy = rapid::run(T, *D, *S);

      const api::EngineRun &Lane = Fan.Engines[I];
      EXPECT_EQ(Lane.Engine, Legacy.Engine);
      EXPECT_EQ(Lane.SampleSize, Legacy.SampleSize);
      EXPECT_EQ(Lane.Stats, Legacy.Stats);
      EXPECT_EQ(Lane.NumRaces, Legacy.NumRaces);
      EXPECT_EQ(Lane.NumRacyLocations, Legacy.NumRacyLocations);
      EXPECT_EQ(Lane.Races, D->races());
      EXPECT_EQ(Lane.RacesTruncated, Legacy.RacesTruncated);
    }
  }
}

//===----------------------------------------------------------------------===//
// The SIMD tier axis: the clock kernels (AVX2/NEON vs scalar) sit under
// every detector's joins, comparisons and snapshots, so whole-session
// results must be bit-identical whichever tier executes — across the
// worker and shard axes too, since those reshuffle which threads run the
// kernels. This is the differential proof the vectorized tiers rest on;
// CI's force-scalar leg runs the same binary with the scalar tier pinned.
//===----------------------------------------------------------------------===//

TEST(DifferentialFuzz, SimdTiersBitIdenticalToScalarAcrossSessions) {
  std::vector<simd::Tier> Tiers;
  simd::Tier Native = simd::activeTier();
  for (simd::Tier T : {simd::Tier::Avx2, simd::Tier::Neon})
    if (simd::forceTier(T))
      Tiers.push_back(T);
  simd::forceTier(Native);
  if (Tiers.empty())
    GTEST_SKIP() << "host supports no SIMD tier; the scalar tier is "
                    "trivially identical to itself";

  SplitMix64 Rng(86028157ull);
  const std::vector<EngineKind> Kinds = allEngineKinds();
  const double Rates[] = {0.003, 0.03, 1.0};
  const size_t WorkerAxis[] = {0, 2};
  const size_t ShardAxis[] = {0, 4};
  const int Cases = fuzzCases(12);
  for (int Case = 0; Case < Cases; ++Case) {
    Trace T = randomTrace(Rng);
    ASSERT_TRUE(T.validate()) << "case " << Case;

    api::SessionConfig Base;
    Base.Engines = Kinds;
    Base.Sampling = api::SamplerKind::Bernoulli;
    Base.SamplingRate = Rates[Case % std::size(Rates)];
    Base.Seed = Rng.next();
    Base.BatchSize = 1 + Rng.nextBelow(300);

    for (size_t W : WorkerAxis) {
      for (size_t Shards : ShardAxis) {
        api::SessionConfig Cfg = Base;
        Cfg.NumWorkers = W;
        Cfg.Shards = Shards;

        // Scalar reference. forceTier flips only between runs: no session
        // is live while the active table changes.
        ASSERT_TRUE(simd::forceTier(simd::Tier::Scalar));
        api::SessionResult Ref =
            api::stripTiming(api::AnalysisSession(Cfg).run(T));

        for (simd::Tier Tier : Tiers) {
          ASSERT_TRUE(simd::forceTier(Tier));
          api::SessionResult R =
              api::stripTiming(api::AnalysisSession(Cfg).run(T));
          ASSERT_EQ(R.Engines.size(), Ref.Engines.size());
          for (size_t I = 0; I < R.Engines.size(); ++I) {
            SCOPED_TRACE(std::string(simd::tierName(Tier)) + ", workers=" +
                         std::to_string(W) + ", shards=" +
                         std::to_string(Shards) + ", " +
                         std::string(engineKindName(Kinds[I])) + ", case " +
                         std::to_string(Case));
            EXPECT_EQ(R.Engines[I].Races, Ref.Engines[I].Races);
            EXPECT_EQ(R.Engines[I].Stats, Ref.Engines[I].Stats);
          }
          EXPECT_TRUE(R == Ref)
              << simd::tierName(Tier) << ", workers=" << W
              << ", shards=" << Shards << ", case " << Case;
        }
        simd::forceTier(Native);
      }
    }
  }
}
