//===- tests/TraceStatsTest.cpp - Structural statistics --------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/TraceStats.h"

#include "sampletrack/trace/SuiteGen.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

using namespace sampletrack;

TEST(TraceStats, CountsHandBuiltTrace) {
  Trace T;
  T.fork(0, 1);
  T.acquire(0, 0);
  T.write(0, 0, /*Marked=*/true);
  T.read(0, 1);
  T.release(0, 0);
  T.acquire(0, 0); // Self-reacquire, empty CS.
  T.release(0, 0);
  T.acquire(1, 0);
  T.release(1, 0);
  T.releaseStore(1, 1);
  T.join(0, 1);

  TraceStats S = TraceStats::of(T);
  EXPECT_EQ(S.Events, T.size());
  EXPECT_EQ(S.Reads, 1u);
  EXPECT_EQ(S.Writes, 1u);
  EXPECT_EQ(S.Acquires, 3u);
  EXPECT_EQ(S.Releases, 3u);
  EXPECT_EQ(S.Forks, 1u);
  EXPECT_EQ(S.Joins, 1u);
  EXPECT_EQ(S.Atomics, 1u);
  EXPECT_EQ(S.Marked, 1u);
  // 3 critical sections; 2 empty (t0's second, t1's).
  EXPECT_NEAR(S.EmptyCsFraction, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(S.MeanCsLength, 2.0 / 3.0, 1e-9);
  // One of three acquires re-takes the lock its thread just released.
  EXPECT_NEAR(S.SelfReacquireFraction, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(S.HottestLockShare, 1.0, 1e-9);
  EXPECT_EQ(S.PerThreadEvents[0], 8u);
  EXPECT_EQ(S.PerThreadEvents[1], 3u);
}

TEST(TraceStats, GeneratorKnobsShowUpInTheStats) {
  GenConfig C;
  C.NumThreads = 6;
  C.NumLocks = 8;
  C.NumEvents = 40000;
  C.Seed = 5;

  C.AccessFraction = 0.2;
  TraceStats SyncHeavy = TraceStats::of(generateWorkload(C));
  C.AccessFraction = 0.7;
  TraceStats AccessHeavy = TraceStats::of(generateWorkload(C));
  EXPECT_LT(SyncHeavy.AccessFraction, AccessHeavy.AccessFraction);
  EXPECT_GT(SyncHeavy.SyncPerAccess, AccessHeavy.SyncPerAccess);

  C.EmptyCsFraction = 0.6;
  TraceStats Empty = TraceStats::of(generateWorkload(C));
  C.EmptyCsFraction = 0.0;
  TraceStats Full = TraceStats::of(generateWorkload(C));
  EXPECT_GT(Empty.EmptyCsFraction, Full.EmptyCsFraction + 0.2);

  C.SelfReacquireBias = 0.9;
  TraceStats SelfHeavy = TraceStats::of(generateWorkload(C));
  C.SelfReacquireBias = 0.0;
  TraceStats SelfLight = TraceStats::of(generateWorkload(C));
  EXPECT_GT(SelfHeavy.SelfReacquireFraction,
            SelfLight.SelfReacquireFraction);
}

TEST(TraceStats, SuiteProfilesMatchDesignClaims) {
  // DESIGN.md claims: cryptorsa is sync-dominated, biojava access-heavy,
  // clean has many empty critical sections, linkedlist/bufwriter are
  // single-lock.
  TraceStats Crypto = TraceStats::of(generateSuiteTrace("cryptorsa", 0.05, 1));
  TraceStats Bio = TraceStats::of(generateSuiteTrace("biojava", 0.05, 1));
  EXPECT_LT(Crypto.AccessFraction, Bio.AccessFraction);

  TraceStats Clean = TraceStats::of(generateSuiteTrace("clean", 0.05, 1));
  EXPECT_GT(Clean.EmptyCsFraction, 0.25);

  TraceStats Linked = TraceStats::of(generateSuiteTrace("linkedlist", 0.05, 1));
  EXPECT_NEAR(Linked.HottestLockShare, 1.0, 1e-9) << "single lock";

  TraceStats Sor = TraceStats::of(generateSuiteTrace("sor", 0.05, 1));
  EXPECT_NEAR(Sor.HottestLockShare, 1.0, 1e-9) << "one barrier lock";
}

TEST(TraceStats, StrMentionsHeadlineNumbers) {
  Trace T;
  T.write(0, 0);
  T.acquire(1, 2);
  T.release(1, 2);
  std::string S = TraceStats::of(T).str();
  EXPECT_NE(S.find("events 3"), std::string::npos);
  EXPECT_NE(S.find("acq 1"), std::string::npos);
}
