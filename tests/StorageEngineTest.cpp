//===- tests/StorageEngineTest.cpp - Mini storage engine tests -------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage-engine substrate: functional correctness of the B-tree /
/// buffer pool / WAL (single- and multi-threaded), and the end-to-end
/// property that matters for the reproduction — the engine's latch
/// discipline is race-free, so every analysis mode must report zero races
/// while observing its deep lock hierarchies.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/workload/StorageEngine.h"

#include "sampletrack/support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::db;

namespace {

rt::Config quietConfig(rt::Mode M = rt::Mode::NT, double Rate = 1.0) {
  rt::Config C;
  C.AnalysisMode = M;
  C.SamplingRate = Rate;
  C.MaxThreads = 16;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Functional (single-threaded, analysis off)
//===----------------------------------------------------------------------===//

TEST(BTreeBasics, PutGetRoundTrip) {
  rt::Runtime Rt(quietConfig());
  BufferPool Pool(Rt, 64, 512);
  BTree Tree(Pool, 0);

  for (uint64_t K = 1; K <= 200; ++K)
    Tree.put(0, K * 7 % 211, K);
  uint64_t V = 0;
  for (uint64_t K = 1; K <= 200; ++K) {
    ASSERT_TRUE(Tree.get(0, K * 7 % 211, V)) << "key " << K * 7 % 211;
    EXPECT_EQ(V, K);
  }
  EXPECT_FALSE(Tree.get(0, 100000, V));
  EXPECT_GT(Tree.height(0), 1u) << "200 keys must split a 15-key root";
}

TEST(BTreeBasics, OverwriteUpdatesInPlace) {
  rt::Runtime Rt(quietConfig());
  BufferPool Pool(Rt, 64, 512);
  BTree Tree(Pool, 0);
  for (int Round = 0; Round < 3; ++Round)
    for (uint64_t K = 0; K < 100; ++K)
      Tree.put(0, K, K + Round * 1000);
  uint64_t V;
  for (uint64_t K = 0; K < 100; ++K) {
    ASSERT_TRUE(Tree.get(0, K, V));
    EXPECT_EQ(V, K + 2000);
  }
}

TEST(BTreeBasics, MatchesStdMapOnRandomOps) {
  rt::Runtime Rt(quietConfig());
  BufferPool Pool(Rt, 128, 2048);
  BTree Tree(Pool, 0);
  std::map<uint64_t, uint64_t> Ref;
  SplitMix64 Rng(17);
  for (int I = 0; I < 5000; ++I) {
    uint64_t K = Rng.nextBelow(800);
    if (Rng.nextBool(0.7)) {
      uint64_t V = Rng.next();
      Tree.put(0, K, V);
      Ref[K] = V;
    } else {
      uint64_t V = 0;
      bool Found = Tree.get(0, K, V);
      auto It = Ref.find(K);
      ASSERT_EQ(Found, It != Ref.end()) << "key " << K;
      if (Found) {
        ASSERT_EQ(V, It->second) << "key " << K;
      }
    }
  }
}

TEST(BTreeBasics, ScanLeafReturnsAscendingValues) {
  rt::Runtime Rt(quietConfig());
  BufferPool Pool(Rt, 64, 512);
  BTree Tree(Pool, 0);
  for (uint64_t K = 0; K < 50; ++K)
    Tree.put(0, K, K * 10);
  std::vector<uint64_t> Out;
  size_t N = Tree.scanLeaf(0, 5, 4, Out);
  EXPECT_GE(N, 1u);
  EXPECT_LE(N, 4u);
  for (size_t I = 1; I < Out.size(); ++I)
    EXPECT_LT(Out[I - 1], Out[I]);
}

TEST(BufferPoolBasics, EvictionPreservesData) {
  rt::Runtime Rt(quietConfig());
  // Tiny pool forces constant eviction.
  BufferPool Pool(Rt, 4, 64);
  std::vector<PageId> Pages;
  for (int I = 0; I < 32; ++I) {
    PageId Id = Pool.allocatePage(0);
    Frame &F = Pool.pin(0, Id);
    F.Latch.lock(0);
    F.Data.Words[1] = 1000 + I;
    F.Latch.unlock(0);
    Pool.unpin(0, F, /*Dirtied=*/true);
    Pages.push_back(Id);
  }
  EXPECT_GT(Pool.evictions(), 0u);
  for (int I = 0; I < 32; ++I) {
    Frame &F = Pool.pin(0, Pages[I]);
    F.Latch.lock(0);
    EXPECT_EQ(F.Data.Words[1], 1000u + I) << "page " << I;
    F.Latch.unlock(0);
    Pool.unpin(0, F, false);
  }
  EXPECT_GT(Pool.hits() + Pool.misses(), 0u);
}

TEST(WalBasics, LsnsAreSequential) {
  rt::Runtime Rt(quietConfig());
  WriteAheadLog Wal(Rt, 128);
  EXPECT_EQ(Wal.append(0, 1, 2, 3), 0u);
  EXPECT_EQ(Wal.append(0, 1, 2, 3), 1u);
  EXPECT_EQ(Wal.commit(0), 2u);
  EXPECT_EQ(Wal.lsn(), 3u);
}

//===----------------------------------------------------------------------===//
// Concurrent correctness + race-freedom under analysis
//===----------------------------------------------------------------------===//

namespace {

class DbModes : public ::testing::TestWithParam<rt::Mode> {};

} // namespace

TEST_P(DbModes, ConcurrentInsertsAreCorrectAndRaceFree) {
  rt::Mode M = GetParam();
  rt::Runtime Rt(quietConfig(M, /*Rate=*/0.5));
  Database Db(Rt, /*NumTables=*/2, /*PoolFrames=*/256, /*DiskPages=*/4096);

  constexpr size_t Workers = 4;
  constexpr uint64_t KeysPerWorker = 300;
  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < Workers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      ThreadId T = Tids[W];
      // Disjoint key ranges so the expected content is deterministic;
      // the *pages* still collide heavily (shared root, shared upper
      // levels, shared buffer pool, shared WAL).
      for (uint64_t K = 0; K < KeysPerWorker; ++K) {
        uint64_t Key = W * KeysPerWorker + K;
        Db.put(T, K % 2, Key, Key * 3 + 1);
        if (K % 7 == 0) {
          uint64_t V;
          Db.get(T, K % 2, Key, V);
        }
      }
    });
  }
  for (size_t W = 0; W < Workers; ++W) {
    Threads[W].join();
    Rt.onJoin(0, Tids[W]);
  }

  // Functional: every key present with the right value.
  for (size_t W = 0; W < Workers; ++W)
    for (uint64_t K = 0; K < KeysPerWorker; ++K) {
      uint64_t Key = W * KeysPerWorker + K;
      uint64_t V = 0;
      ASSERT_TRUE(Db.get(0, K % 2, Key, V)) << "lost key " << Key;
      ASSERT_EQ(V, Key * 3 + 1) << "corrupted key " << Key;
    }

  // Analysis: the latch discipline is race-free; any report is a false
  // positive (or a real bug in the engine).
  if (M != rt::Mode::NT && M != rt::Mode::ET) {
    EXPECT_EQ(Rt.raceCount(), 0u) << "mode " << rt::modeName(M);
  }

  // WAL: every put produced a record and a commit marker.
  EXPECT_EQ(Db.wal().lsn(), Workers * KeysPerWorker * 2);
}

TEST_P(DbModes, MixedReadWriteScanWorkloadIsRaceFree) {
  rt::Mode M = GetParam();
  if (M == rt::Mode::NT || M == rt::Mode::ET)
    GTEST_SKIP() << "no analysis to validate";
  rt::Runtime Rt(quietConfig(M, /*Rate=*/0.2));
  Database Db(Rt, 3, 256, 4096);

  constexpr size_t Workers = 3;
  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < Workers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      ThreadId T = Tids[W];
      SplitMix64 Rng(W * 31 + 5);
      for (int I = 0; I < 600; ++I) {
        size_t Table = Rng.nextBelow(3);
        uint64_t Key = Rng.nextBelow(500);
        switch (Rng.nextBelow(3)) {
        case 0:
          Db.put(T, Table, Key, Rng.next());
          break;
        case 1: {
          uint64_t V;
          Db.get(T, Table, Key, V);
          break;
        }
        default:
          Db.scan(T, Table, Key, 8);
          break;
        }
      }
    });
  }
  for (size_t W = 0; W < Workers; ++W) {
    Threads[W].join();
    Rt.onJoin(0, Tids[W]);
  }
  EXPECT_EQ(Rt.raceCount(), 0u) << rt::modeName(M);
  // The engine should generate a sync-heavy profile: more acquires than
  // sampled accesses at 20%.
  Metrics Agg = Rt.aggregatedMetrics();
  EXPECT_GT(Agg.AcquiresTotal, Agg.SampledAccesses);
}

INSTANTIATE_TEST_SUITE_P(Modes, DbModes,
                         ::testing::Values(rt::Mode::NT, rt::Mode::FT,
                                           rt::Mode::ST, rt::Mode::SU,
                                           rt::Mode::SO),
                         [](const ::testing::TestParamInfo<rt::Mode> &Info) {
                           return rt::modeName(Info.param);
                         });
