//===- tests/ShardDeterminismTest.cpp - Intra-engine shard determinism ----===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The sharding contract of api::AnalysisSession: for any SessionConfig::
// Shards, the SessionResult — minus the wall-clock/shape fields stripTiming
// zeroes — is byte-identical to the unsharded run. Access events are
// analyzed by exactly one shard (VarId % Shards), sync events replicate
// into every shard, and the per-shard sinks/metrics fold back into the
// sequential numbers (position-ordered re-capping, field-wise sums).
// Covers the full axis cross with worker counts, pooling, and per-event
// dispatch, the racesTruncated path near the retention cap, and the
// single-engine speedup demonstration (skipped on hosts without the
// cores to show parallelism).
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/AnalysisSession.h"

#include "sampletrack/trace/SuiteGen.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

// The wall-clock speedup assertion is meaningless under ThreadSanitizer
// (5-15x serialized slowdown); the identity checks still run there.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMPLETRACK_UNDER_TSAN 1
#endif
#endif
#if !defined(SAMPLETRACK_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define SAMPLETRACK_UNDER_TSAN 1
#endif

using namespace sampletrack;

namespace {

const size_t ShardCounts[] = {0, 2, 4, 8};
const size_t WorkerCounts[] = {0, 1, 2, 8};

/// The acceptance lane set: full detection plus all three sampling engines.
const EngineKind FourLanes[] = {EngineKind::FastTrack,
                                EngineKind::SamplingNaive,
                                EngineKind::SamplingO, EngineKind::SamplingU};

api::SessionResult runWith(api::SessionConfig Cfg, const Trace &T,
                           size_t Shards, size_t Workers) {
  Cfg.Shards = Shards;
  Cfg.NumWorkers = Workers;
  return api::AnalysisSession(std::move(Cfg)).run(T);
}

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

TEST(ShardDeterminism, ResultIsIdenticalAcrossShardAndWorkerCounts) {
  Trace T = generateSuiteTrace("bufwriter", 0.25, 3);

  api::SessionConfig Cfg;
  Cfg.Engines.assign(std::begin(FourLanes), std::end(FourLanes));
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = 0.03;
  Cfg.Seed = 7;
  Cfg.BatchSize = 777; // Deliberately odd: span boundaries must not matter.

  api::SessionResult Baseline = api::stripTiming(runWith(Cfg, T, 0, 0));
  ASSERT_EQ(Baseline.Engines.size(), std::size(FourLanes));
  EXPECT_GT(Baseline.Engines[0].NumRaces, 0u); // FT found real work.

  for (size_t S : ShardCounts)
    for (size_t W : WorkerCounts) {
      SCOPED_TRACE("shards=" + std::to_string(S) +
                   " workers=" + std::to_string(W));
      EXPECT_TRUE(api::stripTiming(runWith(Cfg, T, S, W)) == Baseline);
    }
}

TEST(ShardDeterminism, HotPathAxesDoNotChangeShardedResults) {
  // Pooling and the per-event reference loop are the differential
  // harness's hot-path axes; sharding must be invisible to both.
  Trace T = generateSuiteTrace("bufwriter", 0.25, 3);

  api::SessionConfig Cfg;
  Cfg.Engines.assign(std::begin(FourLanes), std::end(FourLanes));
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = 0.03;
  Cfg.Seed = 11;

  api::SessionResult Baseline = api::stripTiming(runWith(Cfg, T, 0, 0));
  for (bool Pooled : {true, false})
    for (bool PerEvent : {true, false})
      for (size_t S : {size_t(2), size_t(4)}) {
        SCOPED_TRACE("pooled=" + std::to_string(Pooled) +
                     " perEvent=" + std::to_string(PerEvent) +
                     " shards=" + std::to_string(S));
        api::SessionConfig C = Cfg;
        C.PoolingEnabled = Pooled;
        C.PerEventDispatch = PerEvent;
        api::SessionResult R = api::stripTiming(runWith(C, T, S, 2));
        // Pooling only moves PoolHits (pool-served vs fresh allocations);
        // everything observable must match the unpooled baseline too.
        if (Pooled == Cfg.PoolingEnabled) {
          EXPECT_TRUE(R == Baseline);
        } else {
          api::SessionResult B = Baseline;
          for (auto *Res : {&R, &B})
            for (api::EngineRun &E : Res->Engines)
              E.Stats.PoolHits = 0;
          EXPECT_TRUE(R == B);
        }
      }
}

TEST(ShardDeterminism, ShardCountIsReportedAndComposesWithWorkers) {
  Trace T = generateSuiteTrace("bufwriter", 0.1, 3);
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::SamplingO, EngineKind::SamplingU};

  // Shards < 2 normalizes to unsharded; the echo says what actually ran.
  EXPECT_EQ(runWith(Cfg, T, 0, 0).Shards, 0u);
  EXPECT_EQ(runWith(Cfg, T, 1, 0).Shards, 0u);
  api::SessionResult R = runWith(Cfg, T, 4, 0);
  EXPECT_EQ(R.Shards, 4u);
  for (const api::EngineRun &E : R.Engines)
    EXPECT_EQ(E.Shards, 4u);

  // Workers clamp against lanes x shards, not the lane count: 2 lanes x 4
  // shards = 8 schedulable units.
  EXPECT_EQ(runWith(Cfg, T, 4, 16).NumWorkers, 8u);
  EXPECT_EQ(runWith(Cfg, T, 0, 16).NumWorkers, 2u);
}

TEST(ShardDeterminism, TruncatedRaceListsStayIdenticalAcrossShardCounts) {
  // More distinct racy locations than the sink capacity, plus heavy
  // duplicate traffic on the stored ones. The sequential sink keeps the
  // first Cap signatures in first-seen order; the per-shard sinks each
  // keep their own first Cap and the merge re-caps by exemplar position —
  // the stored exemplars, truncation flag, overflow counters and merged
  // triage summary must all land on the sequential values.
  const size_t Cap = 128;
  const size_t NumVars = 512;
  Trace T(3, 0, NumVars);
  for (size_t Round = 0; Round < 3; ++Round)
    for (size_t V = 0; V < NumVars; ++V) {
      T.write(1, V, /*Marked=*/true);
      T.write(2, V, /*Marked=*/true);
    }

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingNaive};
  Cfg.Sampling = api::SamplerKind::Marked;
  Cfg.TriageCapacity = Cap;

  api::SessionResult Baseline = api::stripTiming(runWith(Cfg, T, 0, 0));
  const api::EngineRun &Ft = Baseline.Engines.front();
  ASSERT_TRUE(Ft.RacesTruncated);
  ASSERT_EQ(Ft.Races.size(), Cap);
  ASSERT_EQ(Ft.DistinctRaces, Cap);
  ASSERT_GT(Ft.NumRaces, Cap);
  ASSERT_TRUE(Baseline.Triage.Capped);

  for (size_t S : ShardCounts)
    for (size_t W : {size_t(0), size_t(2)}) {
      SCOPED_TRACE("shards=" + std::to_string(S) +
                   " workers=" + std::to_string(W));
      api::SessionResult R = api::stripTiming(runWith(Cfg, T, S, W));
      EXPECT_TRUE(R == Baseline);
    }
}

TEST(ShardDeterminism, SingleEngineFtAndSoBitIdenticalOnFig5bWorkload) {
  // The acceptance check: one engine, the fig5b workload shape at 100%
  // sampling, Shards=4 vs unsharded — signature sets and metrics must be
  // bit-identical (only timing/shape echoes may differ).
  Trace T = generateSuiteTrace("bufwriter", 1.0, 5);

  for (EngineKind K : {EngineKind::FastTrack, EngineKind::SamplingO}) {
    api::SessionConfig Cfg;
    Cfg.Engines = {K};
    Cfg.Sampling = api::SamplerKind::Always;

    api::SessionResult Seq = api::stripTiming(runWith(Cfg, T, 0, 0));
    ASSERT_EQ(Seq.Engines.size(), 1u);
    EXPECT_GT(Seq.Engines[0].NumRaces, 0u);
    for (size_t W : {size_t(0), size_t(4)}) {
      SCOPED_TRACE("engine=" + std::string(Seq.Engines[0].Engine) +
                   " workers=" + std::to_string(W));
      EXPECT_TRUE(api::stripTiming(runWith(Cfg, T, 4, W)) == Seq);
    }
  }
}

TEST(ShardDeterminism, SingleEngineShardSpeedupOnFig5bWorkload) {
  // The point of sharding: ONE engine on one big trace scales past one
  // core. FT at 100% sampling, Shards=4 x NumWorkers=4 vs sequential
  // unsharded, expecting >= 1.5x on a host with >= 4 usable cores. The
  // wall clock is the only thing allowed to differ — the results must
  // still be byte-identical. Hosts without the cores verify identity only.
  const unsigned Cores = std::thread::hardware_concurrency();

  Trace T = generateSuiteTrace("bufwriter", 1.0, 5);

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack};
  Cfg.Sampling = api::SamplerKind::Always; // Access work dominates.

  auto Measure = [&](size_t Shards, size_t Workers, api::SessionResult &Out) {
    // Best-of-3 tames scheduler noise without hiding real overhead.
    uint64_t Best = ~uint64_t(0);
    for (int Rep = 0; Rep < 3; ++Rep) {
      uint64_t T0 = nowNanos();
      Out = runWith(Cfg, T, Shards, Workers);
      Best = std::min(Best, nowNanos() - T0);
    }
    return Best;
  };

  api::SessionResult Seq, Sharded;
  uint64_t SeqNanos = Measure(0, 0, Seq);
  uint64_t ShardedNanos = Measure(4, 4, Sharded);

  EXPECT_TRUE(api::stripTiming(Sharded) == api::stripTiming(Seq));

#ifdef SAMPLETRACK_UNDER_TSAN
  GTEST_SKIP() << "under ThreadSanitizer; wall-clock speedup is not "
                  "meaningful (identity verified above)";
#endif
  if (Cores < 4)
    GTEST_SKIP() << "only " << Cores
                 << " hardware threads; speedup needs >= 4";
  double Speedup = static_cast<double>(SeqNanos) /
                   static_cast<double>(std::max<uint64_t>(ShardedNanos, 1));
  RecordProperty("speedup", std::to_string(Speedup));
  EXPECT_GE(Speedup, 1.5) << "sequential " << SeqNanos << "ns vs sharded "
                          << ShardedNanos << "ns";
}
