//===- tests/TraceTest.cpp - Trace model, I/O and generators ---------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/SuiteGen.h"
#include "sampletrack/trace/TraceGen.h"
#include "sampletrack/trace/TraceIO.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sampletrack;

//===----------------------------------------------------------------------===//
// Event and Trace basics
//===----------------------------------------------------------------------===//

TEST(Event, Rendering) {
  EXPECT_EQ(Event(1, OpKind::Acquire, 2).str(), "T1|acq(L2)");
  EXPECT_EQ(Event(0, OpKind::Write, 7, true).str(), "T0|w(V7)*");
  EXPECT_EQ(Event(3, OpKind::Fork, 4).str(), "T3|fork(T4)");
  EXPECT_EQ(Event(2, OpKind::AcquireLoad, 0).str(), "T2|ld(L0)");
}

TEST(Trace, UniversesGrowWithAppends) {
  Trace T;
  T.write(3, 9);
  T.acquire(1, 5);
  T.fork(0, 4);
  EXPECT_EQ(T.numThreads(), 5u);
  EXPECT_EQ(T.numVars(), 10u);
  EXPECT_EQ(T.numSyncs(), 6u);
  EXPECT_EQ(T.size(), 3u);
}

TEST(Trace, ValidateCatchesLockMisuse) {
  std::string Err;
  {
    Trace T;
    T.acquire(0, 0);
    T.acquire(1, 0);
    EXPECT_FALSE(T.validate(&Err));
    EXPECT_NE(Err.find("held lock"), std::string::npos);
  }
  {
    Trace T;
    T.release(0, 0);
    EXPECT_FALSE(T.validate(&Err));
    EXPECT_NE(Err.find("non-holder"), std::string::npos);
  }
  {
    Trace T;
    T.acquire(0, 0);
    T.release(1, 0);
    EXPECT_FALSE(T.validate(&Err));
  }
}

TEST(Trace, ValidateCatchesForkJoinMisuse) {
  std::string Err;
  {
    Trace T;
    T.write(1, 0);
    T.fork(0, 1); // Forked after it acted.
    EXPECT_FALSE(T.validate(&Err));
  }
  {
    Trace T;
    T.fork(0, 1);
    T.join(0, 1);
    T.write(1, 0); // Acts after being joined.
    EXPECT_FALSE(T.validate(&Err));
  }
  {
    Trace T;
    T.fork(0, 1);
    T.fork(2, 1); // Forked twice.
    EXPECT_FALSE(T.validate(&Err));
  }
}

//===----------------------------------------------------------------------===//
// Text format
//===----------------------------------------------------------------------===//

TEST(TraceIO, ParsesAllOpKinds) {
  const char *Lines[] = {
      "T0|r(V1)",    "T0|w(V2)*",  "T1|acq(L0)", "T1|rel(L0)", "T0|fork(T1)",
      "T0|join(T1)", "T2|st(L3)",  "T2|rj(L3)",  "T2|ld(L3)",
  };
  for (const char *L : Lines) {
    Event E;
    std::string Err;
    EXPECT_TRUE(parseEventLine(L, E, &Err)) << L << ": " << Err;
    EXPECT_EQ(E.str(), L);
  }
}

TEST(TraceIO, RejectsMalformedLines) {
  Event E;
  for (const char *L :
       {"X0|r(V1)", "T0|frobnicate(V1)", "T0|r(L1)", "T0|r(V1", "T0|r(V1)x",
        "T0r(V1)", "T0|acq(L1)*", "", "T|r(V1)"})
    EXPECT_FALSE(parseEventLine(L, E)) << "accepted: '" << L << "'";
}

TEST(TraceIO, RoundTripPreservesEverything) {
  GenConfig C;
  C.NumThreads = 4;
  C.NumEvents = 500;
  C.Seed = 11;
  Trace T = generateWorkload(C);
  // Mark some events to check the flag survives.
  for (size_t I = 0; I < T.size(); I += 7)
    if (isAccess(T[I].Kind))
      T[I].Marked = true;

  std::stringstream SS;
  writeTrace(SS, T);
  Trace Back;
  std::string Err;
  ASSERT_TRUE(readTrace(SS, Back, &Err)) << Err;
  ASSERT_EQ(T.size(), Back.size());
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(T[I], Back[I]) << "event " << I;
  EXPECT_EQ(T.numThreads(), Back.numThreads());
  EXPECT_EQ(T.numVars(), Back.numVars());
  EXPECT_EQ(T.numSyncs(), Back.numSyncs());
}

TEST(TraceIO, SkipsCommentsAndBlanksAndReportsLineNumbers) {
  std::stringstream SS("# header\n\nT0|r(V1)\n  T1|w(V2)\nbogus\n");
  Trace T;
  std::string Err;
  EXPECT_FALSE(readTrace(SS, T, &Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Generators
//===----------------------------------------------------------------------===//

TEST(Generators, WorkloadIsValidAndDeterministic) {
  GenConfig C;
  C.NumThreads = 6;
  C.NumLocks = 8;
  C.NumEvents = 3000;
  C.Seed = 5;
  Trace A = generateWorkload(C);
  Trace B = generateWorkload(C);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_EQ(A[I], B[I]);
  std::string Err;
  EXPECT_TRUE(A.validate(&Err)) << Err;
  EXPECT_GE(A.size(), C.NumEvents);

  C.Seed = 6;
  Trace D = generateWorkload(C);
  EXPECT_FALSE(A.size() == D.size() &&
               std::equal(A.begin(), A.end(), D.begin()))
      << "different seeds should differ";
}

TEST(Generators, AccessFractionIsRoughlyRespected) {
  GenConfig C;
  C.NumEvents = 20000;
  C.AccessFraction = 0.7;
  C.Seed = 9;
  Trace T = generateWorkload(C);
  double Accesses = static_cast<double>(T.countKind(OpKind::Read) +
                                        T.countKind(OpKind::Write));
  double Frac = Accesses / static_cast<double>(T.size());
  EXPECT_NEAR(Frac, 0.7, 0.12);
}

TEST(Generators, StructuredGeneratorsProduceValidTraces) {
  std::string Err;
  EXPECT_TRUE(generateProducerConsumer(3, 2, 50, 1).validate(&Err)) << Err;
  EXPECT_TRUE(generateForkJoin(4, 8, 1).validate(&Err)) << Err;
  EXPECT_TRUE(generateBarrierRounds(6, 10, 8, 1).validate(&Err)) << Err;
  EXPECT_TRUE(generatePipeline(3, 3, 100, 1).validate(&Err)) << Err;
  EXPECT_TRUE(generatePingPong(5, 4, 100, 1).validate(&Err)) << Err;
}

//===----------------------------------------------------------------------===//
// Offline suite
//===----------------------------------------------------------------------===//

TEST(Suite, HasTwentySixBenchmarksInPaperOrder) {
  const auto &Entries = suiteEntries();
  ASSERT_EQ(Entries.size(), 26u);
  EXPECT_EQ(Entries.front().Name, "wronglock");
  EXPECT_EQ(Entries.back().Name, "cassandra");
  EXPECT_TRUE(isSuiteBenchmark("bufwriter"));
  EXPECT_FALSE(isSuiteBenchmark("not-a-benchmark"));
  // Sizes ascend with paper order (ordered by total acquires).
  for (size_t I = 1; I < Entries.size(); ++I)
    EXPECT_GE(Entries[I].BaseEvents, Entries[I - 1].BaseEvents);
}

TEST(Suite, TracesAreValidAndScaleControlsSize) {
  for (const char *Name : {"wronglock", "bubblesort", "sor", "linkedlist"}) {
    Trace Small = generateSuiteTrace(Name, 0.1, 3);
    Trace Large = generateSuiteTrace(Name, 0.5, 3);
    std::string Err;
    EXPECT_TRUE(Small.validate(&Err)) << Name << ": " << Err;
    EXPECT_TRUE(Large.validate(&Err)) << Name << ": " << Err;
    EXPECT_GT(Large.size(), Small.size()) << Name;
  }
}
