//===- tests/SamplerTest.cpp - Sampling strategies -------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/sampling/Sampler.h"

#include <gtest/gtest.h>

using namespace sampletrack;

namespace {

Event access(VarId X = 0) { return Event(0, OpKind::Read, X); }

} // namespace

TEST(Samplers, AlwaysAndNever) {
  AlwaysSampler A;
  NeverSampler N;
  for (int I = 0; I < 10; ++I) {
    EXPECT_TRUE(A.shouldSample(access()));
    EXPECT_FALSE(N.shouldSample(access()));
  }
}

TEST(Samplers, BernoulliHitsTheRate) {
  for (double Rate : {0.003, 0.03, 0.1, 0.5}) {
    BernoulliSampler S(Rate, 12345);
    constexpr int N = 200000;
    int Hits = 0;
    for (int I = 0; I < N; ++I)
      if (S.shouldSample(access()))
        ++Hits;
    double Observed = static_cast<double>(Hits) / N;
    EXPECT_NEAR(Observed, Rate, Rate * 0.15 + 0.001) << "rate " << Rate;
  }
}

TEST(Samplers, BernoulliIsDeterministicInSeed) {
  BernoulliSampler A(0.1, 7), B(0.1, 7), C(0.1, 8);
  std::vector<bool> Da, Db, Dc;
  for (int I = 0; I < 1000; ++I) {
    Da.push_back(A.shouldSample(access()));
    Db.push_back(B.shouldSample(access()));
    Dc.push_back(C.shouldSample(access()));
  }
  EXPECT_EQ(Da, Db);
  EXPECT_NE(Da, Dc);
}

TEST(Samplers, PeriodicSamplesEveryKth) {
  PeriodicSampler S(3);
  std::vector<bool> D;
  for (int I = 0; I < 9; ++I)
    D.push_back(S.shouldSample(access()));
  EXPECT_EQ(D, (std::vector<bool>{true, false, false, true, false, false,
                                  true, false, false}));
}

TEST(Samplers, TargetedSamplesOnlyChosenLocations) {
  TargetedSampler S({3, 5});
  EXPECT_TRUE(S.shouldSample(access(3)));
  EXPECT_FALSE(S.shouldSample(access(4)));
  EXPECT_TRUE(S.shouldSample(access(5)));
}

TEST(Samplers, MarkedFollowsTheTraceBit) {
  MarkedSampler S;
  Event E = access(1);
  EXPECT_FALSE(S.shouldSample(E));
  E.Marked = true;
  EXPECT_TRUE(S.shouldSample(E));
}

TEST(Samplers, Names) {
  EXPECT_EQ(AlwaysSampler().name(), "always");
  EXPECT_EQ(BernoulliSampler(0.03, 1).name(), "bernoulli(3%)");
  EXPECT_EQ(PeriodicSampler(5).name(), "periodic(5)");
}

TEST(Zipf, SkewsTowardLowIndices) {
  SplitMix64 Rng(1);
  ZipfDistribution Z(100, 1.0);
  std::vector<int> Counts(100, 0);
  for (int I = 0; I < 100000; ++I)
    ++Counts[Z.sample(Rng)];
  EXPECT_GT(Counts[0], Counts[10]);
  EXPECT_GT(Counts[10], Counts[99]);
  // Theta = 0 is uniform-ish.
  ZipfDistribution U(10, 0.0);
  std::vector<int> UCounts(10, 0);
  for (int I = 0; I < 100000; ++I)
    ++UCounts[U.sample(Rng)];
  for (int C : UCounts)
    EXPECT_NEAR(C, 10000, 1500);
}
