//===- tests/EpochHistoryTest.cpp - FastTrack histories under sampling -----==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FastTrack epoch optimization applied to the sampling engines' access
/// histories (the paper notes it is independent of its contributions,
/// Section 2.1). FastTrack-style histories may declare fewer *events*
/// (same-epoch fast paths, post-race demotion) but must find exactly the
/// same racy locations, and the first declaration on each location must
/// coincide. These properties are checked for all three engines against
/// their vector-clock-history twins on randomized traces.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/HBClosureOracle.h"
#include "sampletrack/detectors/SamplingNaiveDetector.h"
#include "sampletrack/detectors/SamplingOrderedListDetector.h"
#include "sampletrack/detectors/SamplingUClockDetector.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

#include <map>

using namespace sampletrack;

namespace {

Trace racyTrace(uint64_t Seed, double Rate) {
  GenConfig C;
  C.NumThreads = 5;
  C.NumLocks = 4;
  C.NumVars = 24;
  C.NumEvents = 800;
  C.UnprotectedFraction = 0.10;
  C.RacyVars = 4;
  C.Seed = Seed;
  Trace T = generateWorkload(C);
  rapid::markTrace(T, Rate, Seed * 17 + 3);
  return T;
}

/// Runs \p D over \p T and returns (racy locations, first declaration per
/// location).
std::pair<std::unordered_set<VarId>, std::map<VarId, uint64_t>>
runAndSummarize(const Trace &T, Detector &D) {
  MarkedSampler S;
  rapid::run(T, D, S);
  std::map<VarId, uint64_t> First;
  for (const RaceReport &R : D.races())
    if (!First.count(R.Var))
      First[R.Var] = R.EventIndex;
  return {D.racyLocations(), First};
}

class EpochHistorySweep
    : public ::testing::TestWithParam<std::pair<uint64_t, double>> {};

} // namespace

TEST_P(EpochHistorySweep, SameRacyLocationsAndFirstDeclarations) {
  auto [Seed, Rate] = GetParam();
  Trace T = racyTrace(Seed, Rate);
  size_t NT = T.numThreads();

  struct EnginePair {
    const char *Name;
    std::unique_ptr<Detector> Vc, Eh;
  };
  EnginePair Pairs[3];
  Pairs[0] = {"ST",
              std::make_unique<SamplingNaiveDetector>(
                  NT, HistoryKind::VectorClocks),
              std::make_unique<SamplingNaiveDetector>(NT,
                                                      HistoryKind::Epochs)};
  Pairs[1] = {"SU",
              std::make_unique<SamplingUClockDetector>(
                  NT, HistoryKind::VectorClocks),
              std::make_unique<SamplingUClockDetector>(NT,
                                                       HistoryKind::Epochs)};
  Pairs[2] = {"SO",
              std::make_unique<SamplingOrderedListDetector>(
                  NT, true, HistoryKind::VectorClocks),
              std::make_unique<SamplingOrderedListDetector>(
                  NT, true, HistoryKind::Epochs)};

  for (EnginePair &P : Pairs) {
    auto [VcLocs, VcFirst] = runAndSummarize(T, *P.Vc);
    auto [EhLocs, EhFirst] = runAndSummarize(T, *P.Eh);
    EXPECT_EQ(VcLocs, EhLocs) << P.Name << " racy locations diverged";
    EXPECT_EQ(VcFirst, EhFirst)
        << P.Name << " first race per location diverged";
  }
}

TEST_P(EpochHistorySweep, EpochHistoriesDoLessAccessWork) {
  auto [Seed, Rate] = GetParam();
  if (Rate < 0.2)
    GTEST_SKIP() << "needs enough samples to measure";
  Trace T = racyTrace(Seed, Rate);
  SamplingOrderedListDetector Vc(T.numThreads(), true,
                                 HistoryKind::VectorClocks);
  SamplingOrderedListDetector Eh(T.numThreads(), true, HistoryKind::Epochs);
  MarkedSampler S1, S2;
  rapid::run(T, Vc, S1);
  rapid::run(T, Eh, S2);
  // VC histories snapshot a full clock at every sampled write; epochs only
  // pay O(T) on read promotions and shared-read write checks.
  EXPECT_LT(Eh.metrics().FullClockOps, Vc.metrics().FullClockOps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EpochHistorySweep,
    ::testing::Values(std::pair<uint64_t, double>{1, 0.05},
                      std::pair<uint64_t, double>{2, 0.3},
                      std::pair<uint64_t, double>{3, 1.0},
                      std::pair<uint64_t, double>{4, 0.5},
                      std::pair<uint64_t, double>{5, 1.0},
                      std::pair<uint64_t, double>{6, 0.1},
                      std::pair<uint64_t, double>{7, 0.7},
                      std::pair<uint64_t, double>{8, 1.0}));

TEST(EpochHistories, FirstRacePerLocationMatchesOracle) {
  // The first declaration on each location must agree with the
  // last-access-history oracle semantics even under epoch histories.
  for (uint64_t Seed : {11u, 12u, 13u}) {
    Trace T = racyTrace(Seed, 0.5);
    HBClosureOracle Oracle(T);
    std::map<VarId, uint64_t> OracleFirst;
    for (size_t E : Oracle.declaredRaces(/*MarkedOnly=*/true))
      if (!OracleFirst.count(T[E].var()))
        OracleFirst[T[E].var()] = E;

    SamplingOrderedListDetector Eh(T.numThreads(), true,
                                   HistoryKind::Epochs);
    auto [Locs, First] = runAndSummarize(T, Eh);
    EXPECT_EQ(OracleFirst, First) << "seed " << Seed;
  }
}
