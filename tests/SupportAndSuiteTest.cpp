//===- tests/SupportAndSuiteTest.cpp - Utilities and full-suite checks -----==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace sampletrack;

//===----------------------------------------------------------------------===//
// Table / Summary
//===----------------------------------------------------------------------===//

TEST(Summary, ComputesOrderStatistics) {
  Summary S = Summary::of({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(S.Mean, 3.0);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 5.0);
  EXPECT_DOUBLE_EQ(S.P50, 3.0);
  EXPECT_DOUBLE_EQ(S.P95, 4.0);
}

TEST(Summary, EmptyInputYieldsZeros) {
  Summary S = Summary::of({});
  EXPECT_EQ(S.Mean, 0.0);
  EXPECT_EQ(S.Max, 0.0);
}

TEST(Table, FormatsAndWritesCsv) {
  Table T({"a", "b"});
  T.addRow({"x", Table::fmt(1.2345, 2)});
  T.addRow({"row-with-missing-cell"});
  EXPECT_EQ(T.numRows(), 2u);
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");

  std::string Path = "/tmp/sampletrack_table_test.csv";
  ASSERT_TRUE(T.writeCsv(Path));
  std::ifstream In(Path);
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_EQ(Line, "a,b");
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_EQ(Line, "x,1.23");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Metrics / factory
//===----------------------------------------------------------------------===//

TEST(MetricsStr, MentionsKeyCounters) {
  Metrics M;
  M.AcquiresTotal = 42;
  M.DeepCopies = 7;
  std::string S = M.str();
  EXPECT_NE(S.find("total=42"), std::string::npos);
  EXPECT_NE(S.find("deep=7"), std::string::npos);
}

TEST(DetectorFactory, NamesRoundTrip) {
  for (EngineKind K : allEngineKinds()) {
    std::optional<EngineKind> Back = parseEngineKind(engineKindName(K));
    ASSERT_TRUE(Back.has_value()) << engineKindName(K);
    EXPECT_EQ(*Back, K);
    std::unique_ptr<Detector> D = createDetector(K, 4);
    ASSERT_NE(D, nullptr);
    EXPECT_EQ(D->numThreads(), 4u);
  }
  EXPECT_FALSE(parseEngineKind("bogus").has_value());
  EXPECT_TRUE(parseEngineKind("djit").has_value()) << "lowercase alias";
}

TEST(EventHelpers, KindPredicates) {
  EXPECT_TRUE(isAccess(OpKind::Read));
  EXPECT_TRUE(isAccess(OpKind::Write));
  EXPECT_FALSE(isAccess(OpKind::Acquire));
  EXPECT_TRUE(isReleaseLike(OpKind::Release));
  EXPECT_TRUE(isReleaseLike(OpKind::Fork));
  EXPECT_TRUE(isReleaseLike(OpKind::ReleaseStore));
  EXPECT_TRUE(isReleaseLike(OpKind::ReleaseJoin));
  EXPECT_FALSE(isReleaseLike(OpKind::AcquireLoad));
  EXPECT_TRUE(isAcquireLike(OpKind::Acquire));
  EXPECT_TRUE(isAcquireLike(OpKind::Join));
  EXPECT_TRUE(isAcquireLike(OpKind::AcquireLoad));
  EXPECT_FALSE(isAcquireLike(OpKind::Read));
}

//===----------------------------------------------------------------------===//
// The whole offline suite, end to end
//===----------------------------------------------------------------------===//

TEST(FullSuite, EveryTraceValidatesAndIsDeterministic) {
  for (const SuiteEntry &E : suiteEntries()) {
    Trace A = generateSuiteTrace(E.Name, 0.05, 7);
    Trace B = generateSuiteTrace(E.Name, 0.05, 7);
    std::string Err;
    ASSERT_TRUE(A.validate(&Err)) << E.Name << ": " << Err;
    ASSERT_EQ(A.size(), B.size()) << E.Name;
    for (size_t I = 0; I < A.size(); ++I)
      ASSERT_EQ(A[I], B[I]) << E.Name << " event " << I;
  }
}

TEST(FullSuite, EnginesAgreeOnEveryBenchmark) {
  for (const SuiteEntry &E : suiteEntries()) {
    Trace T = generateSuiteTrace(E.Name, 0.05, 3);
    rapid::markTrace(T, 0.05, 11);
    auto Run = [&](EngineKind K) {
      std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
      MarkedSampler S;
      rapid::run(T, *D, S);
      std::vector<uint64_t> Out;
      for (const RaceReport &R : D->races())
        Out.push_back(R.EventIndex);
      return Out;
    };
    std::vector<uint64_t> ST = Run(EngineKind::SamplingNaive);
    EXPECT_EQ(ST, Run(EngineKind::SamplingU)) << E.Name;
    EXPECT_EQ(ST, Run(EngineKind::SamplingO)) << E.Name;
  }
}

TEST(FullSuite, SamplingWorkScalesDownWithRate) {
  // The headline economic claim across the whole suite: at 0.3% the SO
  // engine's timestamping work must be far below ST's on every trace with
  // meaningful synchronization.
  size_t Improved = 0, Count = 0;
  for (const SuiteEntry &E : suiteEntries()) {
    Trace T = generateSuiteTrace(E.Name, 0.05, 5);
    rapid::markTrace(T, 0.003, 13);
    rapid::RunResult St, So;
    {
      std::unique_ptr<Detector> D =
          createDetector(EngineKind::SamplingNaive, T.numThreads());
      MarkedSampler S;
      St = rapid::run(T, *D, S);
    }
    {
      std::unique_ptr<Detector> D =
          createDetector(EngineKind::SamplingO, T.numThreads());
      MarkedSampler S;
      So = rapid::run(T, *D, S);
    }
    uint64_t StWork = St.Stats.EntriesTraversed +
                      St.Stats.FullClockOps * T.numThreads();
    uint64_t SoWork = So.Stats.EntriesTraversed +
                      So.Stats.FullClockOps * T.numThreads();
    ++Count;
    if (SoWork * 2 < StWork)
      ++Improved;
  }
  EXPECT_GE(Improved * 4, Count * 3)
      << "SO should halve ST's entry-level work on >= 75% of the suite";
}
