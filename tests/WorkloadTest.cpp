//===- tests/WorkloadTest.cpp - Workload simulator tests -------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/workload/Workload.h"

#include <gtest/gtest.h>

using namespace sampletrack;
using namespace sampletrack::workload;

namespace {

RunConfig smallConfig(rt::Mode M, double Rate = 0.03) {
  RunConfig C;
  C.NumClients = 4;
  C.RequestsPerClient = 150;
  C.Rt.AnalysisMode = M;
  C.Rt.SamplingRate = Rate;
  C.Rt.MaxThreads = 8;
  C.Seed = 3;
  return C;
}

} // namespace

TEST(WorkloadSuite, HasTwelveNamedBenchmarks) {
  EXPECT_EQ(benchbaseSuite().size(), 12u);
  EXPECT_NE(findBenchmark("tpcc"), nullptr);
  EXPECT_NE(findBenchmark("ycsb"), nullptr);
  EXPECT_EQ(findBenchmark("nosuch"), nullptr);
}

TEST(WorkloadRun, AllModesCompleteAndMeasureLatency) {
  const BenchmarkSpec *Spec = findBenchmark("smallbank");
  ASSERT_NE(Spec, nullptr);
  for (rt::Mode M : {rt::Mode::NT, rt::Mode::ET, rt::Mode::FT, rt::Mode::ST,
                     rt::Mode::SU, rt::Mode::SO}) {
    RunStats R = runBenchmark(*Spec, smallConfig(M));
    EXPECT_EQ(R.TotalRequests, 4u * 150u) << rt::modeName(M);
    EXPECT_GT(R.LatencyNs.Mean, 0.0) << rt::modeName(M);
    EXPECT_LE(R.LatencyNs.P50, R.LatencyNs.P95) << rt::modeName(M);
  }
}

TEST(WorkloadRun, FullDetectionSeesMoreSyncWorkThanSampling) {
  const BenchmarkSpec *Spec = findBenchmark("tpcc");
  ASSERT_NE(Spec, nullptr);
  RunStats FT = runBenchmark(*Spec, smallConfig(rt::Mode::FT));
  RunStats SO = runBenchmark(*Spec, smallConfig(rt::Mode::SO, 0.003));
  // FT processes every acquire; SO skips most of them at a low rate.
  EXPECT_EQ(FT.Stats.AcquiresSkipped + FT.Stats.AcquiresProcessed,
            FT.Stats.AcquiresTotal);
  EXPECT_GT(SO.Stats.AcquiresSkipped, SO.Stats.AcquiresTotal / 2);
}

TEST(WorkloadRun, UnprotectedScratchRacesAreFound) {
  // A spec with aggressive unprotected traffic must produce detected races
  // under full analysis.
  BenchmarkSpec Spec = *findBenchmark("smallbank");
  Spec.UnprotectedProb = 0.5;
  RunConfig C = smallConfig(rt::Mode::FT);
  C.RequestsPerClient = 300;
  RunStats R = runBenchmark(Spec, C);
  EXPECT_GT(R.Races, 0u);
  EXPECT_GT(R.RacyLocations, 0u);
}

TEST(WorkloadRun, DeterministicRequestDistribution) {
  // Same seed, same spec: the request mix (and thus the analysis work
  // volumes that do not depend on thread interleaving) must be identical
  // across runs in metrics that count events.
  const BenchmarkSpec *Spec = findBenchmark("voter");
  RunStats A = runBenchmark(*Spec, smallConfig(rt::Mode::FT));
  RunStats B = runBenchmark(*Spec, smallConfig(rt::Mode::FT));
  EXPECT_EQ(A.Stats.Accesses, B.Stats.Accesses);
  EXPECT_EQ(A.Stats.AcquiresTotal, B.Stats.AcquiresTotal);
}
