//===- tests/AnalysisSessionTest.cpp - Pipeline API tests ------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The engine-equivalence golden tests: a K-engine AnalysisSession fan-out
// over a single trace traversal must be bit-identical — metrics, race
// lists, sample sets — to K independent legacy rapid::Engine runs with the
// same sampler seed. Plus coverage for the batched/shim ingestion paths,
// streamed sources, live hooks, truncation surfacing and the reporters.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/AnalysisSession.h"

#include "sampletrack/api/Report.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/trace/SuiteGen.h"
#include "sampletrack/trace/TraceGen.h"
#include "sampletrack/trace/TraceIO.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sampletrack;

namespace {

/// A mid-sized suite trace with plenty of real races and all event kinds.
Trace goldenTrace() { return generateSuiteTrace("bufwriter", 0.25, 3); }

const EngineKind FanOutKinds[] = {
    EngineKind::Djit, EngineKind::FastTrack, EngineKind::SamplingNaive,
    EngineKind::SamplingU, EngineKind::SamplingO};

/// Runs kind \p K standalone the legacy way (fresh detector, fresh
/// Bernoulli stream) and returns (result, race list).
std::pair<rapid::RunResult, std::vector<RaceReport>>
legacyRun(const Trace &T, EngineKind K, double Rate, uint64_t Seed) {
  std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
  BernoulliSampler S(Rate, Seed);
  rapid::RunResult R = rapid::run(T, *D, S);
  return {R, D->races()};
}

} // namespace

TEST(AnalysisSession, FanOutMatchesLegacyEngineRunsBitForBit) {
  Trace T = goldenTrace();
  const double Rate = 0.03;
  const uint64_t Seed = 7;

  api::SessionConfig Cfg;
  Cfg.Engines.assign(std::begin(FanOutKinds), std::end(FanOutKinds));
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = Rate;
  Cfg.Seed = Seed;
  api::SessionResult Fan = api::AnalysisSession(Cfg).run(T);

  ASSERT_EQ(Fan.Engines.size(), std::size(FanOutKinds));
  EXPECT_EQ(Fan.EventsProcessed, T.size());

  for (size_t I = 0; I < std::size(FanOutKinds); ++I) {
    SCOPED_TRACE(engineKindName(FanOutKinds[I]));
    auto [Legacy, LegacyRaces] = legacyRun(T, FanOutKinds[I], Rate, Seed);
    const api::EngineRun &Lane = Fan.Engines[I];

    EXPECT_EQ(Lane.Engine, Legacy.Engine);
    // Bit-identical sample set: every lane shares one decision stream that
    // equals what a standalone Bernoulli sampler with the same seed draws.
    EXPECT_EQ(Lane.SampleSize, Legacy.SampleSize);
    EXPECT_EQ(Lane.Stats, Legacy.Stats);
    EXPECT_EQ(Lane.NumRaces, Legacy.NumRaces);
    EXPECT_EQ(Lane.NumRacyLocations, Legacy.NumRacyLocations);
    EXPECT_EQ(Lane.Races, LegacyRaces);
    EXPECT_EQ(Lane.RacesTruncated, Legacy.RacesTruncated);
  }

  // The fan-out actually found work to disagree about: the full engines
  // and sampling engines see different race universes.
  EXPECT_GT(Fan.Engines[1].NumRaces, 0u); // FT, full detection on samples.
}

TEST(AnalysisSession, StreamedBinarySourceIsReadOnceAndMatchesInMemory) {
  Trace T = goldenTrace();
  rapid::markTrace(T, 0.05, 11);

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::SamplingNaive, EngineKind::SamplingU,
                 EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Marked;
  Cfg.BatchSize = 512; // Force many small batches through the decoder.
  api::SessionResult InMemory = api::AnalysisSession(Cfg).run(T);

  // A stringstream is consumable exactly once: if any lane triggered a
  // second traversal, decoding would fail and the run would error out.
  std::ostringstream Bin;
  writeTraceBinary(Bin, T);
  std::istringstream Is(Bin.str());
  api::SessionResult Streamed;
  std::string Err;
  ASSERT_TRUE(api::AnalysisSession(Cfg).run(Is, Streamed, &Err)) << Err;

  ASSERT_EQ(Streamed.Engines.size(), InMemory.Engines.size());
  EXPECT_EQ(Streamed.EventsProcessed, InMemory.EventsProcessed);
  EXPECT_EQ(Streamed.NumThreads, InMemory.NumThreads);
  for (size_t I = 0; I < Streamed.Engines.size(); ++I) {
    EXPECT_EQ(Streamed.Engines[I].Stats, InMemory.Engines[I].Stats);
    EXPECT_EQ(Streamed.Engines[I].Races, InMemory.Engines[I].Races);
    EXPECT_EQ(Streamed.Engines[I].SampleSize, InMemory.Engines[I].SampleSize);
  }
}

TEST(AnalysisSession, BatchedIngestionEqualsPerEventShim) {
  Trace T = goldenTrace();
  rapid::markTrace(T, 0.1, 5);

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Marked;

  api::AnalysisSession Batched(Cfg);
  ASSERT_TRUE(Batched.begin(T.numThreads()));
  Batched.process(std::span<const Event>(T.events()));
  api::SessionResult A = Batched.finish();

  api::AnalysisSession Shimmed(Cfg);
  ASSERT_TRUE(Shimmed.begin(T.numThreads()));
  for (const Event &E : T)
    Shimmed.process(E);
  api::SessionResult B = Shimmed.finish();

  ASSERT_EQ(A.Engines.size(), 1u);
  ASSERT_EQ(B.Engines.size(), 1u);
  EXPECT_EQ(A.Engines[0].Stats, B.Engines[0].Stats);
  EXPECT_EQ(A.Engines[0].Races, B.Engines[0].Races);
  EXPECT_EQ(A.EventsProcessed, B.EventsProcessed);
}

TEST(AnalysisSession, LiveHooksMatchEquivalentTrace) {
  // The same execution, fed once through live hooks and once as a trace:
  //   t0: acq(l) w(x) rel(l) w(y)   t1: acq(l) w(x) rel(l) w(y)
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack};
  Cfg.Sampling = api::SamplerKind::Always;
  Cfg.MaxThreads = 4;

  api::AnalysisSession Live(Cfg);
  ASSERT_TRUE(Live.begin());
  api::SessionHooks Hooks(Live);
  ThreadId T1 = Hooks.registerThread();
  SyncId L = Hooks.registerSync();
  Hooks.onAcquire(0, L);
  Hooks.onWrite(0, 0);
  Hooks.onRelease(0, L);
  Hooks.onWrite(0, 1);
  Hooks.onAcquire(T1, L);
  Hooks.onWrite(T1, 0);
  Hooks.onRelease(T1, L);
  Hooks.onWrite(T1, 1);
  api::SessionResult FromHooks = Live.finish();

  Trace T(4, 1, 2);
  T.acquire(0, 0);
  T.write(0, 0);
  T.release(0, 0);
  T.write(0, 1);
  T.acquire(1, 0);
  T.write(1, 0);
  T.release(1, 0);
  T.write(1, 1);
  Cfg.NumThreads = 4;
  api::SessionResult FromTrace = api::AnalysisSession(Cfg).run(T);

  ASSERT_EQ(FromHooks.Engines.size(), 1u);
  ASSERT_EQ(FromTrace.Engines.size(), 1u);
  EXPECT_EQ(FromHooks.Engines[0].Stats, FromTrace.Engines[0].Stats);
  EXPECT_EQ(FromHooks.Engines[0].Races, FromTrace.Engines[0].Races);
  EXPECT_EQ(FromHooks.Engines[0].NumRaces, 1u); // The unprotected w(y) pair.
}

TEST(AnalysisSession, DuplicateDeclarationsDedupWithoutTruncation) {
  // Two threads alternating unsynchronized writes to one location: every
  // access after the first declares a race — historically this overflowed
  // the stored-race cap; the warehouse sink dedups all of it into one
  // signature with a hit count instead, and truncation stays off.
  constexpr size_t NumEvents = 1 << 16;
  Trace T(3, 0, 1);
  for (size_t I = 0; I < NumEvents; ++I)
    T.write(1 + I % 2, 0, /*Marked=*/true); // Two worker threads: one role,
                                            // one signature.

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack};
  Cfg.Sampling = api::SamplerKind::Marked;
  api::SessionResult R = api::AnalysisSession(Cfg).run(T);

  const api::EngineRun &Ft = R.Engines.front();
  EXPECT_GT(Ft.NumRaces, NumEvents / 2); // Nearly every write races.
  EXPECT_EQ(Ft.DistinctRaces, 1u);
  EXPECT_EQ(Ft.Races.size(), 1u);
  EXPECT_FALSE(Ft.RacesTruncated);
  EXPECT_EQ(R.Triage.distinct(), 1u);
  EXPECT_EQ(R.Triage.Entries[0].Hits, Ft.NumRaces);
  EXPECT_NE(api::toJson(R).find("\"distinctRaces\": 1"), std::string::npos);
}

TEST(AnalysisSession, RaceSinkTruncationIsSurfaced) {
  // Truncation now means "distinct signatures exceeded the sink capacity":
  // 96 distinct racy locations against a 64-signature sink. Two worker
  // threads (same role) write each location back-to-back, so every
  // location contributes exactly one signature.
  constexpr size_t NumVars = 96, Cap = 64;
  Trace T(3, 0, NumVars);
  for (size_t V = 0; V < NumVars; ++V) {
    T.write(1, V, /*Marked=*/true);
    T.write(2, V, /*Marked=*/true);
  }

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack};
  Cfg.Sampling = api::SamplerKind::Marked;
  Cfg.TriageCapacity = Cap;
  api::SessionResult R = api::AnalysisSession(Cfg).run(T);

  const api::EngineRun &Ft = R.Engines.front();
  EXPECT_EQ(Ft.NumRaces, NumVars);
  EXPECT_EQ(Ft.DistinctRaces, Cap);
  EXPECT_EQ(Ft.Races.size(), Cap);
  EXPECT_TRUE(Ft.RacesTruncated);
  EXPECT_TRUE(R.Triage.Capped);
  EXPECT_EQ(R.Triage.DroppedDeclarations, NumVars - Cap);

  // The truncation flag travels through both reporters, and distinct-vs-
  // declared makes a capped run distinguishable from a deduplicated one.
  EXPECT_NE(api::toJson(R).find("\"racesTruncated\": true"),
            std::string::npos);
  EXPECT_NE(api::toJson(R).find("\"distinctRaces\": 64"), std::string::npos);
  EXPECT_NE(api::toCsv(R).find(",1,"), std::string::npos);

  // An uncapped run over the same trace: everything distinct, no
  // truncation, and the legacy wrapper agrees.
  Cfg.TriageCapacity = 0;
  api::SessionResult Full = api::AnalysisSession(Cfg).run(T);
  EXPECT_EQ(Full.Engines.front().DistinctRaces, NumVars);
  EXPECT_FALSE(Full.Engines.front().RacesTruncated);
  rapid::RunResult Legacy = rapid::runEngine(T, EngineKind::FastTrack,
                                             /*Rate=*/1.0, /*Seed=*/0);
  EXPECT_FALSE(Legacy.RacesTruncated);
  EXPECT_EQ(Legacy.DistinctRaces, NumVars);

  // And stays off when nothing was dropped.
  api::SessionResult Small = api::AnalysisSession(Cfg).run(goldenTrace());
  EXPECT_FALSE(Small.Engines.front().RacesTruncated);
  EXPECT_NE(api::toJson(Small).find("\"racesTruncated\": false"),
            std::string::npos);
}

TEST(AnalysisSession, ReportersCarryEveryLane) {
  Trace T = goldenTrace();
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::SamplingNaive, EngineKind::SamplingO};
  Cfg.SamplingRate = 0.05;
  api::SessionResult R = api::AnalysisSession(Cfg).run(T);

  std::string Json = api::toJson(R, /*MaxRaces=*/4);
  EXPECT_NE(Json.find("\"engine\": \"ST\""), std::string::npos);
  EXPECT_NE(Json.find("\"engine\": \"SO\""), std::string::npos);
  EXPECT_NE(Json.find("\"raceReports\""), std::string::npos);
  EXPECT_NE(Json.find("\"sampler\": \"bernoulli(5%)\""), std::string::npos);

  std::string Csv = api::toCsv(R);
  // Header plus one row per engine.
  EXPECT_EQ(std::count(Csv.begin(), Csv.end(), '\n'), 3);
  EXPECT_NE(Csv.find("ST,"), std::string::npos);
  EXPECT_NE(Csv.find("SO,"), std::string::npos);

  // Lane lookup helper.
  ASSERT_NE(R.find("SO"), nullptr);
  EXPECT_EQ(R.find("SO")->Engine, "SO");
  EXPECT_EQ(R.find("nope"), nullptr);
}

TEST(DetectorFactory, ParseIsCaseInsensitiveAndRoundTrips) {
  for (EngineKind K : allEngineKinds()) {
    std::string Name = engineKindName(K);
    SCOPED_TRACE(Name);
    // Round-trip: the printed name parses back to the same kind.
    ASSERT_TRUE(parseEngineKind(Name).has_value());
    EXPECT_EQ(*parseEngineKind(Name), K);
    // Case-insensitively.
    std::string Upper = Name, Lower = Name;
    for (char &C : Upper)
      C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
    for (char &C : Lower)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    ASSERT_TRUE(parseEngineKind(Upper).has_value());
    EXPECT_EQ(*parseEngineKind(Upper), K);
    ASSERT_TRUE(parseEngineKind(Lower).has_value());
    EXPECT_EQ(*parseEngineKind(Lower), K);
  }
  EXPECT_EQ(parseEngineKind("fasttrack"), EngineKind::FastTrack);
  EXPECT_EQ(parseEngineKind("DJIT"), EngineKind::Djit);
  EXPECT_EQ(parseEngineKind("TreeClock"), EngineKind::TreeClockFull);
  EXPECT_EQ(parseEngineKind("so-NOEPOCH"), EngineKind::SamplingONoEpochOpt);
  EXPECT_FALSE(parseEngineKind("warp-drive").has_value());
}

TEST(DetectorFactory, CreateDetectorsPreservesPresentationOrder) {
  std::vector<EngineKind> Kinds = allEngineKinds();
  std::vector<std::unique_ptr<Detector>> Ds = createDetectors(Kinds, 8);
  ASSERT_EQ(Ds.size(), Kinds.size());
  for (size_t I = 0; I < Ds.size(); ++I) {
    ASSERT_NE(Ds[I], nullptr);
    EXPECT_EQ(Ds[I]->numThreads(), 8u);
    // The factory's printed names and the detectors' self-reported names
    // agree up to the ablation variants that share an engine.
    std::optional<EngineKind> Parsed = parseEngineKind(Ds[I]->name());
    ASSERT_TRUE(Parsed.has_value()) << Ds[I]->name();
  }
}
