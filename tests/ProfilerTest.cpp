//===- tests/ProfilerTest.cpp - Hierarchical self-profiler tests ----------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The prof subsystem's contracts: RAII scope nesting builds the tree the
// names describe and the exclusive-time arithmetic holds; the merged report
// is keyed by span path, not by which tree recorded it; a profiled
// AnalysisSession's report is byte-identical (modulo timing) across every
// worker and shard count; disabled profiling yields the empty profile; and
// the chrome-trace export of all three batch subsystems (session, runtime,
// explore) is well-formed Trace Event Format JSON.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/prof/ChromeTrace.h"
#include "sampletrack/prof/Profiler.h"

#include "sampletrack/api/AnalysisSession.h"
#include "sampletrack/api/Exploration.h"
#include "sampletrack/runtime/Runtime.h"
#include "sampletrack/support/Json.h"
#include "sampletrack/trace/SuiteGen.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

using namespace sampletrack;

namespace {

/// Finds the direct child of \p N named \p Name; nullptr when absent.
const prof::ReportNode *child(const prof::ReportNode &N,
                              std::string_view Name) {
  for (const prof::ReportNode &C : N.Children)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

uint64_t childInclusiveSum(const prof::ReportNode &N) {
  uint64_t Sum = 0;
  for (const prof::ReportNode &C : N.Children)
    Sum += C.InclusiveNanos;
  return Sum;
}

/// Recursively checks the exclusive-time identity on every node.
void expectExclusiveInvariant(const prof::ReportNode &N) {
  uint64_t ChildSum = childInclusiveSum(N);
  if (ChildSum >= N.InclusiveNanos)
    EXPECT_EQ(N.ExclusiveNanos, 0u) << N.Name;
  else
    EXPECT_EQ(N.ExclusiveNanos, N.InclusiveNanos - ChildSum) << N.Name;
  for (const prof::ReportNode &C : N.Children)
    expectExclusiveInvariant(C);
}

api::SessionConfig profiledConfig() {
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingNaive,
                 EngineKind::SamplingO, EngineKind::SamplingU};
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = 0.03;
  Cfg.Seed = 7;
  Cfg.ProfilingEnabled = true;
  return Cfg;
}

} // namespace

TEST(Profiler, ScopeNestingBuildsTheTreeAndExclusiveTimeAddsUp) {
  prof::Profiler P;
  prof::Tree *T = P.makeTree("main");

  for (int I = 0; I < 3; ++I) {
    prof::Scope Outer(T, "outer");
    {
      prof::Scope Inner(T, "inner");
      // A second distinct child on one of the iterations only.
      if (I == 0) {
        Inner.reset();
        prof::Scope Other(T, "other");
      }
    }
  }
  { prof::Scope Top(T, "outer"); } // Re-entering merges into the same node.

  prof::Report R = P.report();
  ASSERT_EQ(R.Root.Children.size(), 1u);
  const prof::ReportNode *Outer = child(R.Root, "outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->Count, 4u);

  const prof::ReportNode *Inner = child(*Outer, "inner");
  const prof::ReportNode *Other = child(*Outer, "other");
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Inner->Count, 3u);
  EXPECT_EQ(Other->Count, 1u);
  // Children are name-sorted.
  EXPECT_EQ(Outer->Children[0].Name, "inner");
  EXPECT_EQ(Outer->Children[1].Name, "other");

  // Nesting: a parent's inclusive time covers its children's.
  EXPECT_GE(Outer->InclusiveNanos, childInclusiveSum(*Outer));
  // Leaves spend everything on themselves.
  EXPECT_EQ(Inner->ExclusiveNanos, Inner->InclusiveNanos);
  expectExclusiveInvariant(R.Root);
}

TEST(Profiler, MergeIsKeyedByPathNotByRecordingTree) {
  // One thread recording a path twice vs two threads recording it once
  // each: the merged reports must be byte-identical after timing-strip.
  prof::Profiler A;
  prof::Tree *T1 = A.makeTree("only");
  for (int I = 0; I < 2; ++I) {
    prof::Scope S(T1, "work");
    prof::Scope C(T1, "step");
    T1->addCounter(T1->intern(T1->root(), "work"), "items", 5);
  }

  prof::Profiler B;
  for (const char *Name : {"w-0", "w-1"}) {
    prof::Tree *T = B.makeTree(Name);
    prof::Scope S(T, "work");
    prof::Scope C(T, "step");
    T->addCounter(T->intern(T->root(), "work"), "items", 5);
  }

  prof::Report Ra = prof::stripTiming(A.report());
  prof::Report Rb = prof::stripTiming(B.report());
  EXPECT_TRUE(Ra == Rb);
  EXPECT_EQ(prof::toText(Ra), prof::toText(Rb));

  const prof::ReportNode *Work = child(Ra.Root, "work");
  ASSERT_NE(Work, nullptr);
  EXPECT_EQ(Work->Count, 2u);
  ASSERT_EQ(Work->Counters.size(), 1u);
  EXPECT_EQ(Work->Counters[0].first, "items");
  EXPECT_EQ(Work->Counters[0].second, 10u);
}

TEST(Profiler, InternPathRecordsNothingAndZeroCountSamplesAddOnlyNanos) {
  prof::Profiler P;
  prof::Tree *T = P.makeTree("t");

  // internPath creates the chain but no counts — threads may pre-intern
  // shared paths without perturbing the merged tree.
  prof::NodeId Leaf = T->internPath({"a", "b", "c"});
  prof::Report R0 = P.report();
  const prof::ReportNode *A0 = child(R0.Root, "a");
  ASSERT_NE(A0, nullptr);
  EXPECT_EQ(A0->Count, 0u);
  EXPECT_EQ(A0->InclusiveNanos, 0u);
  ASSERT_NE(child(*A0, "b"), nullptr);

  // Count=0 folds nanoseconds in without a call — the non-primary shard
  // drive convention that keeps counts shard-count-invariant.
  T->addSample(Leaf, 1000, /*Count=*/0);
  T->addSample(Leaf, 500, /*Count=*/1);
  prof::Report R1 = P.report();
  const prof::ReportNode *C1 = child(*child(*child(R1.Root, "a"), "b"), "c");
  ASSERT_NE(C1, nullptr);
  EXPECT_EQ(C1->Count, 1u);
  EXPECT_EQ(C1->InclusiveNanos, 1500u);
}

TEST(Profiler, SessionProfileIsIdenticalAcrossWorkerAndShardCounts) {
  // The tentpole determinism contract: the merged span tree — shape,
  // counts, counters, rendered bytes — is independent of how the work was
  // scheduled. Only nanoseconds may differ.
  Trace T = generateSuiteTrace("bufwriter", 0.25, 3);
  api::SessionConfig Cfg = profiledConfig();

  api::SessionConfig Base = Cfg;
  api::SessionResult R0 = api::AnalysisSession(Base).run(T);
  ASSERT_FALSE(R0.Profile.empty());
  prof::Report Baseline = prof::stripTiming(R0.Profile);
  std::string BaselineText = prof::toText(Baseline);

  // The taxonomy the README documents.
  const prof::ReportNode *Session = child(Baseline.Root, "session");
  ASSERT_NE(Session, nullptr);
  EXPECT_EQ(Session->Count, 1u);
  ASSERT_NE(child(*Session, "ingest"), nullptr);
  const prof::ReportNode *Analyze = child(*Session, "analyze");
  ASSERT_NE(Analyze, nullptr);
  EXPECT_EQ(Analyze->Children.size(), 4u); // One child per engine lane.
  // Each lane is sampled once per ingest batch; every lane sees the same
  // batches, so the counts agree (their value is the batch count).
  EXPECT_GE(Analyze->Children[0].Count, 1u);
  for (const prof::ReportNode &Lane : Analyze->Children)
    EXPECT_EQ(Lane.Count, Analyze->Children[0].Count) << Lane.Name;
  ASSERT_NE(child(*Session, "finish"), nullptr);
  // Root counters: the session's headline numbers.
  ASSERT_EQ(Session->Counters.size(), 2u);
  EXPECT_EQ(Session->Counters[0].first, "events");
  EXPECT_EQ(Session->Counters[0].second, T.size());
  EXPECT_EQ(Session->Counters[1].first, "sampledAccesses");

  for (size_t W : {size_t(0), size_t(1), size_t(2), size_t(8)})
    for (size_t S : {size_t(0), size_t(2), size_t(4), size_t(8)}) {
      SCOPED_TRACE("workers=" + std::to_string(W) +
                   " shards=" + std::to_string(S));
      api::SessionConfig C = Cfg;
      C.NumWorkers = W;
      C.Shards = S;
      api::SessionResult R = api::AnalysisSession(C).run(T);
      prof::Report Stripped = prof::stripTiming(R.Profile);
      EXPECT_TRUE(Stripped == Baseline);
      EXPECT_EQ(prof::toText(Stripped), BaselineText);
    }
}

TEST(Profiler, DisabledProfilingYieldsEmptyProfileAndStripCoversProfile) {
  Trace T = generateSuiteTrace("bufwriter", 0.1, 3);

  api::SessionConfig Off = profiledConfig();
  Off.ProfilingEnabled = false;
  api::SessionResult Plain = api::AnalysisSession(Off).run(T);
  EXPECT_TRUE(Plain.Profile.empty());

  // api::stripTiming reaches into the profile: nanoseconds go to zero,
  // structure and counts survive.
  api::SessionResult On = api::AnalysisSession(profiledConfig()).run(T);
  ASSERT_FALSE(On.Profile.empty());
  api::SessionResult Stripped = api::stripTiming(On);
  EXPECT_FALSE(Stripped.Profile.empty());
  const prof::ReportNode *Session = child(Stripped.Profile.Root, "session");
  ASSERT_NE(Session, nullptr);
  EXPECT_EQ(Session->InclusiveNanos, 0u);
  EXPECT_EQ(Session->Count, 1u);
  EXPECT_TRUE(Stripped.Profile == prof::stripTiming(On.Profile));
}

TEST(Profiler, ReportRendersAsJsonAndCsv) {
  Trace T = generateSuiteTrace("bufwriter", 0.1, 3);
  api::SessionResult R = api::AnalysisSession(profiledConfig()).run(T);

  // The flat array the session JSON reporter / bench trajectory embed.
  std::string Arr = prof::toJsonArray(R.Profile);
  support::JsonValue V;
  std::string Err;
  ASSERT_TRUE(support::JsonValue::parse(Arr, V, &Err)) << Err;
  ASSERT_TRUE(V.isArray());
  ASSERT_FALSE(V.Array.empty());
  bool SawSession = false;
  for (const support::JsonValue &Span : V.Array) {
    ASSERT_TRUE(Span.isObject());
    EXPECT_NE(Span.get("path"), nullptr);
    EXPECT_NE(Span.get("count"), nullptr);
    EXPECT_NE(Span.get("inclusiveNanos"), nullptr);
    EXPECT_NE(Span.get("exclusiveNanos"), nullptr);
    if (Span.getString("path") == "session")
      SawSession = true;
  }
  EXPECT_TRUE(SawSession);

  std::string Csv = prof::toCsv(R.Profile);
  EXPECT_EQ(Csv.rfind("path,count,inclusiveNanos,exclusiveNanos\n", 0), 0u);
  EXPECT_NE(Csv.find("session/analyze/FT,"), std::string::npos);
}

TEST(Profiler, ChromeTraceCoversSessionRuntimeAndExploreSources) {
  // Session source.
  Trace T = generateSuiteTrace("bufwriter", 0.1, 3);
  api::AnalysisSession S(profiledConfig());
  S.run(T);
  std::unique_ptr<prof::Profiler> SessionProf = S.takeProfiler();
  ASSERT_NE(SessionProf, nullptr);

  // Runtime source: a tiny online run with hook spans enabled.
  rt::Config RC;
  RC.AnalysisMode = rt::Mode::SO;
  RC.SamplingRate = 1.0;
  RC.ProfilingEnabled = true;
  rt::Runtime Rt(RC);
  uint64_t Shared = 0;
  ThreadId A = Rt.registerThread();
  Rt.onFork(0, A);
  Rt.onAcquire(A, 1);
  Rt.onWrite(A, reinterpret_cast<uint64_t>(&Shared));
  Rt.onRead(A, reinterpret_cast<uint64_t>(&Shared));
  Rt.onRelease(A, 1);
  Rt.onJoin(0, A);
  ASSERT_NE(Rt.profiler(), nullptr);

  // Explore source.
  GenConfig G;
  G.NumThreads = 3;
  G.NumEvents = 300;
  G.Seed = 5;
  explore::Workload W = explore::Workload::fromTrace(generateWorkload(G));
  explore::ExploreConfig EC;
  EC.MaxSchedules = 4;
  api::SessionConfig ECfg;
  ECfg.Engines = {EngineKind::FastTrack};
  prof::Profiler ExploreProf;
  api::runExploration(ECfg, W, EC, &ExploreProf);

  const prof::TraceSource Sources[] = {
      {SessionProf.get(), "session"},
      {Rt.profiler(), "runtime"},
      {&ExploreProf, "explore"},
  };
  std::string Trace = prof::toChromeTrace(Sources);

  support::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(support::JsonValue::parse(Trace, Doc, &Err)) << Err;
  EXPECT_EQ(Doc.getString("displayTimeUnit"), "ms");
  const support::JsonValue *Events = Doc.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  bool ProcessNames[3] = {false, false, false};
  bool SawSpan[3] = {false, false, false};
  bool SawCounter = false;
  for (const support::JsonValue &E : Events->Array) {
    ASSERT_TRUE(E.isObject());
    std::string Ph = E.getString("ph");
    double Pid = E.getNumber("pid", -1);
    ASSERT_GE(Pid, 1);
    ASSERT_LE(Pid, 3);
    size_t Src = static_cast<size_t>(Pid) - 1;
    if (Ph == "M") {
      if (E.getString("name") == "process_name")
        ProcessNames[Src] = true;
    } else if (Ph == "X") {
      SawSpan[Src] = true;
      bool HasTs = false, HasDur = false;
      E.getNumber("ts", 0, &HasTs);
      E.getNumber("dur", 0, &HasDur);
      EXPECT_TRUE(HasTs && HasDur);
      EXPECT_FALSE(E.getString("name").empty());
    } else if (Ph == "C") {
      SawCounter = true;
    } else {
      ADD_FAILURE() << "unexpected event phase: " << Ph;
    }
  }
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_TRUE(ProcessNames[I]) << "source " << I;
    EXPECT_TRUE(SawSpan[I]) << "source " << I;
  }
  EXPECT_TRUE(SawCounter); // The session's events/sampledAccesses tracks.

  // The spans the ISSUE's acceptance bullet names, one per subsystem.
  EXPECT_NE(Trace.find("\"name\": \"session\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\": \"acquire\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\": \"enumerate\""), std::string::npos);
}
