//===- tests/ClockTest.cpp - Clock data structure tests --------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for VectorClock, OrderedList and TreeClock:
/// algebraic laws of join/leq, structural invariants under random operation
/// sequences, and agreement between the three representations.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/support/OrderedList.h"
#include "sampletrack/support/Rng.h"
#include "sampletrack/support/TreeClock.h"
#include "sampletrack/support/VectorClock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace sampletrack;

//===----------------------------------------------------------------------===//
// VectorClock
//===----------------------------------------------------------------------===//

TEST(VectorClock, BottomIsLeqEverything) {
  VectorClock Bot(4), Other(4);
  Other.set(2, 7);
  EXPECT_TRUE(Bot.leq(Other));
  EXPECT_FALSE(Other.leq(Bot));
  EXPECT_TRUE(Bot.leq(Bot));
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock A(3), B(3);
  A.set(0, 5);
  A.set(1, 1);
  B.set(1, 4);
  B.set(2, 2);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 4u);
  EXPECT_EQ(A.get(2), 2u);
  EXPECT_TRUE(B.leq(A));
}

TEST(VectorClock, JoinCountingChangesCountsExactly) {
  VectorClock A(4), B(4);
  B.set(0, 1);
  B.set(2, 3);
  EXPECT_EQ(A.joinCountingChanges(B), 2u);
  EXPECT_EQ(A.joinCountingChanges(B), 0u) << "idempotent join";
}

TEST(VectorClock, LeqWithOverrideAppliesToRhs) {
  VectorClock Hist(3), Clock(3);
  Hist.set(1, 5);
  Clock.set(1, 2);
  EXPECT_FALSE(Hist.leq(Clock));
  // Effective clock raises component 1 to 6.
  EXPECT_TRUE(Hist.leqWithOverride(Clock, 1, 6));
  EXPECT_FALSE(Hist.leqWithOverride(Clock, 0, 99));
}

TEST(VectorClock, JoinLaws) {
  // Commutativity, associativity, idempotence on random clocks.
  SplitMix64 Rng(99);
  for (int Iter = 0; Iter < 200; ++Iter) {
    VectorClock A(6), B(6), C(6);
    for (ThreadId T = 0; T < 6; ++T) {
      A.set(T, Rng.nextBelow(10));
      B.set(T, Rng.nextBelow(10));
      C.set(T, Rng.nextBelow(10));
    }
    VectorClock AB = A, BA = B;
    AB.joinWith(B);
    BA.joinWith(A);
    EXPECT_EQ(AB, BA);

    VectorClock L = A, R = B;
    L.joinWith(B);
    L.joinWith(C);
    R.joinWith(C);
    R.joinWith(A);
    EXPECT_EQ(L, R);

    VectorClock AA = A;
    AA.joinWith(A);
    EXPECT_EQ(AA, A);
    EXPECT_TRUE(A.leq(AB) && B.leq(AB));
  }
}

//===----------------------------------------------------------------------===//
// OrderedList
//===----------------------------------------------------------------------===//

TEST(OrderedList, GetSetIncrementBasics) {
  OrderedList O(5);
  EXPECT_EQ(O.get(3), 0u);
  O.set(3, 7);
  EXPECT_EQ(O.get(3), 7u);
  EXPECT_EQ(O.head(), 3u) << "set moves the node to the head";
  O.increment(1, 2);
  EXPECT_EQ(O.get(1), 2u);
  EXPECT_EQ(O.head(), 1u) << "increment moves the node to the head";
  EXPECT_TRUE(O.checkStructure());
}

TEST(OrderedList, PaperExampleFigure4) {
  // Fig. 4: <t1:6, t2:20, t3:8, t4:0, t5:1> with list order
  // t1 < t2 < t5 < t3 < t4; then O.set(t4, 6); then O.inc(t1, 1).
  OrderedList O(5); // t1..t5 are ids 0..4 here.
  // Build the order by setting in reverse: last set is at the head.
  O.set(3, 0);  // t4
  O.set(2, 8);  // t3
  O.set(4, 1);  // t5
  O.set(1, 20); // t2
  O.set(0, 6);  // t1
  EXPECT_EQ(O.get(2), 8u);

  O.set(3, 6); // O.set(t4, 6)
  EXPECT_EQ(O.head(), 3u);
  EXPECT_EQ(O.get(3), 6u);

  O.increment(0, 1); // O.inc(t1, 1)
  EXPECT_EQ(O.head(), 0u);
  EXPECT_EQ(O.get(0), 7u);
  // Order now: t1, t4, t2, t5, t3.
  ThreadId Cur = O.head();
  std::vector<ThreadId> Order;
  while (Cur != NoThread) {
    Order.push_back(Cur);
    Cur = O.next(Cur);
  }
  EXPECT_EQ(Order, (std::vector<ThreadId>{0, 3, 1, 4, 2}));
  EXPECT_TRUE(O.checkStructure());
}

TEST(OrderedList, VisitPrefixStopsAtK) {
  OrderedList O(4);
  O.set(2, 5);
  O.set(0, 3);
  size_t Count = 0;
  O.visitPrefix(2, [&](ThreadId, ClockValue) { ++Count; });
  EXPECT_EQ(Count, 2u);
  Count = 0;
  O.visitPrefix(100, [&](ThreadId, ClockValue) { ++Count; });
  EXPECT_EQ(Count, 4u) << "clamped to list length";
}

TEST(OrderedList, PrefixCoversMostRecentUpdates) {
  // Property: after any sequence of sets, the K most recently updated
  // distinct threads are exactly the first K list entries.
  SplitMix64 Rng(4242);
  for (int Iter = 0; Iter < 100; ++Iter) {
    constexpr size_t N = 8;
    OrderedList O(N);
    std::vector<ThreadId> RecencyOrder; // most recent first
    for (int Step = 0; Step < 50; ++Step) {
      ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
      O.set(T, Step + 1);
      RecencyOrder.erase(
          std::remove(RecencyOrder.begin(), RecencyOrder.end(), T),
          RecencyOrder.end());
      RecencyOrder.insert(RecencyOrder.begin(), T);
    }
    ASSERT_TRUE(O.checkStructure());
    std::vector<ThreadId> Prefix;
    O.visitPrefix(RecencyOrder.size(),
                  [&](ThreadId T, ClockValue) { Prefix.push_back(T); });
    Prefix.resize(RecencyOrder.size());
    EXPECT_EQ(Prefix, RecencyOrder);
  }
}

TEST(OrderedList, RandomOpsKeepStructureAndMatchVectorClock) {
  SplitMix64 Rng(7);
  constexpr size_t N = 6;
  OrderedList O(N);
  VectorClock Ref(N);
  for (int Step = 0; Step < 1000; ++Step) {
    ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
    if (Rng.nextBool(0.5)) {
      ClockValue V = Ref.get(T) + Rng.nextBelow(5);
      O.set(T, V);
      Ref.set(T, V);
    } else {
      O.increment(T, 1);
      Ref.bump(T, 1);
    }
    ASSERT_TRUE(O.checkStructure());
  }
  for (ThreadId T = 0; T < N; ++T)
    EXPECT_EQ(O.get(T), Ref.get(T));
  VectorClock Snap(N);
  O.toVectorClock(Snap, 0, Ref.get(0));
  EXPECT_EQ(Snap, Ref);
}

TEST(OrderedList, DominatesWithOverride) {
  OrderedList O(3);
  O.set(1, 4);
  VectorClock H(3);
  H.set(0, 2);
  EXPECT_FALSE(O.dominatesWithOverride(H, 2, 0));
  EXPECT_TRUE(O.dominatesWithOverride(H, 0, 2)) << "override supplies t0";
  H.set(1, 4);
  EXPECT_TRUE(O.dominatesWithOverride(H, 0, 2));
  H.set(1, 5);
  EXPECT_FALSE(O.dominatesWithOverride(H, 0, 2));
}

//===----------------------------------------------------------------------===//
// TreeClock
//===----------------------------------------------------------------------===//

TEST(TreeClock, RootOperations) {
  TreeClock TC(4, 1);
  EXPECT_EQ(TC.root(), 1u);
  EXPECT_EQ(TC.get(1), 0u);
  TC.setRootTime(3);
  EXPECT_EQ(TC.get(1), 3u);
  TC.incrementRoot();
  EXPECT_EQ(TC.get(1), 4u);
  EXPECT_TRUE(TC.checkStructure());
}

TEST(TreeClock, JoinImportsKnowledge) {
  TreeClock A(4, 0), B(4, 1);
  B.setRootTime(5);
  unsigned Examined = A.joinFrom(B);
  EXPECT_GT(Examined, 0u);
  EXPECT_EQ(A.get(1), 5u);
  EXPECT_TRUE(A.checkStructure());
  // Idempotent: joining again examines nothing (fast path).
  EXPECT_EQ(A.joinFrom(B), 0u);
}

TEST(TreeClock, TransitiveKnowledgeFlows) {
  // C learns about A through B.
  TreeClock A(4, 0), B(4, 1), C(4, 2);
  A.setRootTime(3);
  B.joinFrom(A);
  B.setRootTime(7);
  C.joinFrom(B);
  EXPECT_EQ(C.get(0), 3u);
  EXPECT_EQ(C.get(1), 7u);
  EXPECT_TRUE(C.checkStructure());
}

TEST(TreeClock, RandomJoinsMatchVectorClocks) {
  // Simulate full-HB communication: threads increment their roots and join
  // each other through lock-style snapshots; tree clock components must
  // match a parallel vector-clock simulation at every step.
  SplitMix64 Rng(123);
  constexpr size_t N = 6;
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::vector<TreeClock> TCs;
    std::vector<VectorClock> VCs(N, VectorClock(N));
    for (ThreadId T = 0; T < N; ++T) {
      TCs.emplace_back(N, T);
      TCs[T].setRootTime(1);
      VCs[T].set(T, 1);
    }
    for (int Step = 0; Step < 120; ++Step) {
      ThreadId Src = static_cast<ThreadId>(Rng.nextBelow(N));
      ThreadId Dst = static_cast<ThreadId>(Rng.nextBelow(N));
      if (Src == Dst)
        continue;
      // Snapshot-and-bump models release; join models the next acquire.
      TreeClock Snap;
      Snap.deepCopyFrom(TCs[Src]);
      VectorClock VSnap = VCs[Src];
      TCs[Src].incrementRoot();
      VCs[Src].bump(Src);
      TCs[Dst].joinFrom(Snap);
      VCs[Dst].joinWith(VSnap);
      ASSERT_TRUE(TCs[Dst].checkStructure());
      for (ThreadId T = 0; T < N; ++T)
        ASSERT_EQ(TCs[Dst].get(T), VCs[Dst].get(T))
            << "iter " << Iter << " step " << Step;
    }
  }
}

//===----------------------------------------------------------------------===//
// SIMD kernel tiers: every tier the host supports must be bit-identical to
// scalar on every public clock operation, at widths straddling the vector
// boundaries (AVX2 = 4 lanes, NEON = 2), including the override and
// counting variants and the OrderedList interop paths.
//===----------------------------------------------------------------------===//

namespace {

/// Forces a tier for one scope and restores the previously active one.
class TierGuard {
public:
  explicit TierGuard(simd::Tier T)
      : Saved(simd::activeTier()), Ok(simd::forceTier(T)) {}
  ~TierGuard() { simd::forceTier(Saved); }
  bool ok() const { return Ok; }

private:
  simd::Tier Saved;
  bool Ok;
};

/// Tiers worth testing on this host beyond scalar. Restores whatever tier
/// was active before probing.
std::vector<simd::Tier> hostSimdTiers() {
  simd::Tier Before = simd::activeTier();
  std::vector<simd::Tier> Tiers;
  for (simd::Tier T : {simd::Tier::Avx2, simd::Tier::Neon})
    if (simd::forceTier(T))
      Tiers.push_back(T);
  simd::forceTier(Before);
  return Tiers;
}

/// A random clock of width N. Mostly small values with zero runs (the
/// realistic mostly-idle shape), plus occasional huge values to exercise
/// the unsigned-compare sign-flip path above 2^63.
VectorClock randomClock(SplitMix64 &Rng, size_t N) {
  VectorClock C(N);
  for (ThreadId T = 0; T < N; ++T) {
    uint64_t Roll = Rng.nextBelow(10);
    if (Roll < 4)
      continue; // Keep zero: exercises the high-water mark paths.
    if (Roll == 9)
      C.set(T, ~uint64_t(0) - Rng.nextBelow(1000)); // Sign-bit territory.
    else
      C.set(T, 1 + Rng.nextBelow(50));
  }
  return C;
}

} // namespace

TEST(SimdKernels, AllTiersMatchScalarAcrossWidthBoundaries) {
  std::vector<simd::Tier> Tiers = hostSimdTiers();
  if (Tiers.empty())
    GTEST_SKIP() << "host supports no SIMD tier; scalar is the only tier";
  SplitMix64 Rng(2025);
  // T=1..17 straddles both the NEON (2) and AVX2 (4) lane widths and the
  // inline-scalar dispatch threshold.
  for (size_t N = 1; N <= 17; ++N) {
    for (int Iter = 0; Iter < 60; ++Iter) {
      VectorClock A = randomClock(Rng, N);
      VectorClock B = randomClock(Rng, N);
      ThreadId OverTid = static_cast<ThreadId>(Rng.nextBelow(N));
      ClockValue OverVal = Rng.nextBelow(2) ? Rng.nextBelow(60)
                                            : ~uint64_t(0) - Rng.nextBelow(9);

      // Scalar reference results.
      bool RefLeq, RefLeqOv;
      ClockValue RefSum;
      unsigned RefChanged;
      VectorClock RefJoin(N), RefCount(N);
      {
        TierGuard G(simd::Tier::Scalar);
        ASSERT_TRUE(G.ok());
        RefLeq = A.leq(B);
        RefLeqOv = A.leqWithOverride(B, OverTid, OverVal);
        RefSum = A.componentSum();
        RefJoin.copyFrom(A);
        RefJoin.joinWith(B);
        RefCount.copyFrom(A);
        RefChanged = RefCount.joinCountingChanges(B);
      }

      for (simd::Tier T : Tiers) {
        TierGuard G(T);
        ASSERT_TRUE(G.ok());
        EXPECT_EQ(A.leq(B), RefLeq) << simd::tierName(T) << " N=" << N;
        EXPECT_EQ(A.leqWithOverride(B, OverTid, OverVal), RefLeqOv)
            << simd::tierName(T) << " N=" << N << " tid=" << OverTid;
        EXPECT_EQ(A.componentSum(), RefSum) << simd::tierName(T);
        VectorClock J(N);
        J.copyFrom(A);
        J.joinWith(B);
        EXPECT_EQ(J, RefJoin) << simd::tierName(T) << " N=" << N;
        VectorClock JC(N);
        JC.copyFrom(A);
        EXPECT_EQ(JC.joinCountingChanges(B), RefChanged)
            << simd::tierName(T) << " N=" << N;
        EXPECT_EQ(JC, RefCount) << simd::tierName(T) << " N=" << N;
      }
    }
  }
}

TEST(SimdKernels, OrderedListInteropMatchesScalar) {
  std::vector<simd::Tier> Tiers = hostSimdTiers();
  if (Tiers.empty())
    GTEST_SKIP() << "host supports no SIMD tier; scalar is the only tier";
  SplitMix64 Rng(777);
  for (size_t N = 1; N <= 17; ++N) {
    for (int Iter = 0; Iter < 40; ++Iter) {
      OrderedList O(N);
      for (int Op = 0; Op < 24; ++Op) {
        ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
        if (Rng.nextBool(0.5))
          O.set(T, Rng.nextBelow(2) ? Rng.nextBelow(40)
                                    : ~uint64_t(0) - Rng.nextBelow(5));
        else
          O.increment(T, 1 + Rng.nextBelow(9));
      }
      VectorClock C = randomClock(Rng, N);
      ThreadId OverTid = static_cast<ThreadId>(Rng.nextBelow(N));
      ClockValue OverVal = Rng.nextBelow(80);

      bool RefDom;
      VectorClock RefSnap(N);
      {
        TierGuard G(simd::Tier::Scalar);
        ASSERT_TRUE(G.ok());
        RefDom = O.dominatesWithOverride(C, OverTid, OverVal);
        O.toVectorClock(RefSnap, OverTid, OverVal);
      }
      for (simd::Tier T : Tiers) {
        TierGuard G(T);
        ASSERT_TRUE(G.ok());
        EXPECT_EQ(O.dominatesWithOverride(C, OverTid, OverVal), RefDom)
            << simd::tierName(T) << " N=" << N;
        VectorClock Snap(N);
        O.toVectorClock(Snap, OverTid, OverVal);
        EXPECT_EQ(Snap, RefSnap) << simd::tierName(T) << " N=" << N;
      }
    }
  }
}

TEST(VectorClock, HighWaterMarkStaysConservative) {
  // After any operation sequence, every component at or beyond activeLen()
  // must be zero, and the clock must behave exactly like a full-width one.
  SplitMix64 Rng(4242);
  for (int Iter = 0; Iter < 200; ++Iter) {
    size_t N = 1 + Rng.nextBelow(33);
    VectorClock C(N);
    std::vector<ClockValue> Mirror(N, 0);
    for (int Op = 0; Op < 30; ++Op) {
      switch (Rng.nextBelow(5)) {
      case 0: {
        ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
        ClockValue V = Rng.nextBelow(30); // May be zero: hwm stays put.
        C.set(T, V);
        Mirror[T] = V;
        break;
      }
      case 1: {
        ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
        C.bump(T);
        ++Mirror[T];
        break;
      }
      case 2: {
        VectorClock Other = randomClock(Rng, N);
        C.joinWith(Other);
        for (ThreadId T = 0; T < N; ++T)
          Mirror[T] = std::max(Mirror[T], Other.get(T));
        break;
      }
      case 3: {
        VectorClock Other = randomClock(Rng, N);
        C.copyFrom(Other);
        for (ThreadId T = 0; T < N; ++T)
          Mirror[T] = Other.get(T);
        break;
      }
      case 4:
        C.clear();
        std::fill(Mirror.begin(), Mirror.end(), 0);
        break;
      }
      ASSERT_LE(C.activeLen(), N);
      for (size_t I = C.activeLen(); I < N; ++I)
        ASSERT_EQ(C.get(static_cast<ThreadId>(I)), 0u)
            << "hwm invariant broken at iter " << Iter;
      for (ThreadId T = 0; T < N; ++T)
        ASSERT_EQ(C.get(T), Mirror[T]);
      ClockValue Sum = 0;
      for (ClockValue V : Mirror)
        Sum += V;
      ASSERT_EQ(C.componentSum(), Sum);
    }
  }
}

TEST(OrderedList, StructureSurvivesRandomStorms) {
  // SoA rewrite guard: heavy random set/increment storms (every move-to-
  // head shape: head, tail, middle, repeated) must keep the doubly-linked
  // chain intact and agree with a plain map of the values.
  SplitMix64 Rng(31337);
  for (int Iter = 0; Iter < 80; ++Iter) {
    size_t N = 1 + Rng.nextBelow(20);
    OrderedList O(N);
    std::vector<ClockValue> Mirror(N, 0);
    for (int Op = 0; Op < 200; ++Op) {
      ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
      if (Rng.nextBool(0.5)) {
        ClockValue V = Rng.nextBelow(100);
        O.set(T, V);
        Mirror[T] = V;
      } else {
        ClockValue K = 1 + Rng.nextBelow(5);
        O.increment(T, K);
        Mirror[T] += K;
      }
      ASSERT_EQ(O.head(), T) << "updated node must move to the head";
    }
    ASSERT_TRUE(O.checkStructure()) << "iter " << Iter << ": " << O.str();
    for (ThreadId T = 0; T < N; ++T)
      ASSERT_EQ(O.get(T), Mirror[T]);
    // The list order visits every node exactly once (checkStructure), and
    // visitPrefix over the full width sees each thread's current value.
    size_t Seen = 0;
    O.visitPrefix(N, [&](ThreadId T, ClockValue V) {
      ASSERT_EQ(V, Mirror[T]);
      ++Seen;
    });
    ASSERT_EQ(Seen, N);
  }
}
