//===- tests/ClockTest.cpp - Clock data structure tests --------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for VectorClock, OrderedList and TreeClock:
/// algebraic laws of join/leq, structural invariants under random operation
/// sequences, and agreement between the three representations.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/support/OrderedList.h"
#include "sampletrack/support/Rng.h"
#include "sampletrack/support/TreeClock.h"
#include "sampletrack/support/VectorClock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace sampletrack;

//===----------------------------------------------------------------------===//
// VectorClock
//===----------------------------------------------------------------------===//

TEST(VectorClock, BottomIsLeqEverything) {
  VectorClock Bot(4), Other(4);
  Other.set(2, 7);
  EXPECT_TRUE(Bot.leq(Other));
  EXPECT_FALSE(Other.leq(Bot));
  EXPECT_TRUE(Bot.leq(Bot));
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock A(3), B(3);
  A.set(0, 5);
  A.set(1, 1);
  B.set(1, 4);
  B.set(2, 2);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 4u);
  EXPECT_EQ(A.get(2), 2u);
  EXPECT_TRUE(B.leq(A));
}

TEST(VectorClock, JoinCountingChangesCountsExactly) {
  VectorClock A(4), B(4);
  B.set(0, 1);
  B.set(2, 3);
  EXPECT_EQ(A.joinCountingChanges(B), 2u);
  EXPECT_EQ(A.joinCountingChanges(B), 0u) << "idempotent join";
}

TEST(VectorClock, LeqWithOverrideAppliesToRhs) {
  VectorClock Hist(3), Clock(3);
  Hist.set(1, 5);
  Clock.set(1, 2);
  EXPECT_FALSE(Hist.leq(Clock));
  // Effective clock raises component 1 to 6.
  EXPECT_TRUE(Hist.leqWithOverride(Clock, 1, 6));
  EXPECT_FALSE(Hist.leqWithOverride(Clock, 0, 99));
}

TEST(VectorClock, JoinLaws) {
  // Commutativity, associativity, idempotence on random clocks.
  SplitMix64 Rng(99);
  for (int Iter = 0; Iter < 200; ++Iter) {
    VectorClock A(6), B(6), C(6);
    for (ThreadId T = 0; T < 6; ++T) {
      A.set(T, Rng.nextBelow(10));
      B.set(T, Rng.nextBelow(10));
      C.set(T, Rng.nextBelow(10));
    }
    VectorClock AB = A, BA = B;
    AB.joinWith(B);
    BA.joinWith(A);
    EXPECT_EQ(AB, BA);

    VectorClock L = A, R = B;
    L.joinWith(B);
    L.joinWith(C);
    R.joinWith(C);
    R.joinWith(A);
    EXPECT_EQ(L, R);

    VectorClock AA = A;
    AA.joinWith(A);
    EXPECT_EQ(AA, A);
    EXPECT_TRUE(A.leq(AB) && B.leq(AB));
  }
}

//===----------------------------------------------------------------------===//
// OrderedList
//===----------------------------------------------------------------------===//

TEST(OrderedList, GetSetIncrementBasics) {
  OrderedList O(5);
  EXPECT_EQ(O.get(3), 0u);
  O.set(3, 7);
  EXPECT_EQ(O.get(3), 7u);
  EXPECT_EQ(O.head(), 3u) << "set moves the node to the head";
  O.increment(1, 2);
  EXPECT_EQ(O.get(1), 2u);
  EXPECT_EQ(O.head(), 1u) << "increment moves the node to the head";
  EXPECT_TRUE(O.checkStructure());
}

TEST(OrderedList, PaperExampleFigure4) {
  // Fig. 4: <t1:6, t2:20, t3:8, t4:0, t5:1> with list order
  // t1 < t2 < t5 < t3 < t4; then O.set(t4, 6); then O.inc(t1, 1).
  OrderedList O(5); // t1..t5 are ids 0..4 here.
  // Build the order by setting in reverse: last set is at the head.
  O.set(3, 0);  // t4
  O.set(2, 8);  // t3
  O.set(4, 1);  // t5
  O.set(1, 20); // t2
  O.set(0, 6);  // t1
  EXPECT_EQ(O.get(2), 8u);

  O.set(3, 6); // O.set(t4, 6)
  EXPECT_EQ(O.head(), 3u);
  EXPECT_EQ(O.get(3), 6u);

  O.increment(0, 1); // O.inc(t1, 1)
  EXPECT_EQ(O.head(), 0u);
  EXPECT_EQ(O.get(0), 7u);
  // Order now: t1, t4, t2, t5, t3.
  ThreadId Cur = O.head();
  std::vector<ThreadId> Order;
  while (Cur != NoThread) {
    Order.push_back(Cur);
    Cur = O.next(Cur);
  }
  EXPECT_EQ(Order, (std::vector<ThreadId>{0, 3, 1, 4, 2}));
  EXPECT_TRUE(O.checkStructure());
}

TEST(OrderedList, VisitPrefixStopsAtK) {
  OrderedList O(4);
  O.set(2, 5);
  O.set(0, 3);
  size_t Count = 0;
  O.visitPrefix(2, [&](ThreadId, ClockValue) { ++Count; });
  EXPECT_EQ(Count, 2u);
  Count = 0;
  O.visitPrefix(100, [&](ThreadId, ClockValue) { ++Count; });
  EXPECT_EQ(Count, 4u) << "clamped to list length";
}

TEST(OrderedList, PrefixCoversMostRecentUpdates) {
  // Property: after any sequence of sets, the K most recently updated
  // distinct threads are exactly the first K list entries.
  SplitMix64 Rng(4242);
  for (int Iter = 0; Iter < 100; ++Iter) {
    constexpr size_t N = 8;
    OrderedList O(N);
    std::vector<ThreadId> RecencyOrder; // most recent first
    for (int Step = 0; Step < 50; ++Step) {
      ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
      O.set(T, Step + 1);
      RecencyOrder.erase(
          std::remove(RecencyOrder.begin(), RecencyOrder.end(), T),
          RecencyOrder.end());
      RecencyOrder.insert(RecencyOrder.begin(), T);
    }
    ASSERT_TRUE(O.checkStructure());
    std::vector<ThreadId> Prefix;
    O.visitPrefix(RecencyOrder.size(),
                  [&](ThreadId T, ClockValue) { Prefix.push_back(T); });
    Prefix.resize(RecencyOrder.size());
    EXPECT_EQ(Prefix, RecencyOrder);
  }
}

TEST(OrderedList, RandomOpsKeepStructureAndMatchVectorClock) {
  SplitMix64 Rng(7);
  constexpr size_t N = 6;
  OrderedList O(N);
  VectorClock Ref(N);
  for (int Step = 0; Step < 1000; ++Step) {
    ThreadId T = static_cast<ThreadId>(Rng.nextBelow(N));
    if (Rng.nextBool(0.5)) {
      ClockValue V = Ref.get(T) + Rng.nextBelow(5);
      O.set(T, V);
      Ref.set(T, V);
    } else {
      O.increment(T, 1);
      Ref.bump(T, 1);
    }
    ASSERT_TRUE(O.checkStructure());
  }
  for (ThreadId T = 0; T < N; ++T)
    EXPECT_EQ(O.get(T), Ref.get(T));
  VectorClock Snap(N);
  O.toVectorClock(Snap, 0, Ref.get(0));
  EXPECT_EQ(Snap, Ref);
}

TEST(OrderedList, DominatesWithOverride) {
  OrderedList O(3);
  O.set(1, 4);
  VectorClock H(3);
  H.set(0, 2);
  EXPECT_FALSE(O.dominatesWithOverride(H, 2, 0));
  EXPECT_TRUE(O.dominatesWithOverride(H, 0, 2)) << "override supplies t0";
  H.set(1, 4);
  EXPECT_TRUE(O.dominatesWithOverride(H, 0, 2));
  H.set(1, 5);
  EXPECT_FALSE(O.dominatesWithOverride(H, 0, 2));
}

//===----------------------------------------------------------------------===//
// TreeClock
//===----------------------------------------------------------------------===//

TEST(TreeClock, RootOperations) {
  TreeClock TC(4, 1);
  EXPECT_EQ(TC.root(), 1u);
  EXPECT_EQ(TC.get(1), 0u);
  TC.setRootTime(3);
  EXPECT_EQ(TC.get(1), 3u);
  TC.incrementRoot();
  EXPECT_EQ(TC.get(1), 4u);
  EXPECT_TRUE(TC.checkStructure());
}

TEST(TreeClock, JoinImportsKnowledge) {
  TreeClock A(4, 0), B(4, 1);
  B.setRootTime(5);
  unsigned Examined = A.joinFrom(B);
  EXPECT_GT(Examined, 0u);
  EXPECT_EQ(A.get(1), 5u);
  EXPECT_TRUE(A.checkStructure());
  // Idempotent: joining again examines nothing (fast path).
  EXPECT_EQ(A.joinFrom(B), 0u);
}

TEST(TreeClock, TransitiveKnowledgeFlows) {
  // C learns about A through B.
  TreeClock A(4, 0), B(4, 1), C(4, 2);
  A.setRootTime(3);
  B.joinFrom(A);
  B.setRootTime(7);
  C.joinFrom(B);
  EXPECT_EQ(C.get(0), 3u);
  EXPECT_EQ(C.get(1), 7u);
  EXPECT_TRUE(C.checkStructure());
}

TEST(TreeClock, RandomJoinsMatchVectorClocks) {
  // Simulate full-HB communication: threads increment their roots and join
  // each other through lock-style snapshots; tree clock components must
  // match a parallel vector-clock simulation at every step.
  SplitMix64 Rng(123);
  constexpr size_t N = 6;
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::vector<TreeClock> TCs;
    std::vector<VectorClock> VCs(N, VectorClock(N));
    for (ThreadId T = 0; T < N; ++T) {
      TCs.emplace_back(N, T);
      TCs[T].setRootTime(1);
      VCs[T].set(T, 1);
    }
    for (int Step = 0; Step < 120; ++Step) {
      ThreadId Src = static_cast<ThreadId>(Rng.nextBelow(N));
      ThreadId Dst = static_cast<ThreadId>(Rng.nextBelow(N));
      if (Src == Dst)
        continue;
      // Snapshot-and-bump models release; join models the next acquire.
      TreeClock Snap;
      Snap.deepCopyFrom(TCs[Src]);
      VectorClock VSnap = VCs[Src];
      TCs[Src].incrementRoot();
      VCs[Src].bump(Src);
      TCs[Dst].joinFrom(Snap);
      VCs[Dst].joinWith(VSnap);
      ASSERT_TRUE(TCs[Dst].checkStructure());
      for (ThreadId T = 0; T < N; ++T)
        ASSERT_EQ(TCs[Dst].get(T), VCs[Dst].get(T))
            << "iter " << Iter << " step " << Step;
    }
  }
}
