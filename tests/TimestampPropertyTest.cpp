//===- tests/TimestampPropertyTest.cpp - Paper propositions ----------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the paper's timestamp theory, evaluated declaratively
/// by the oracle on randomized traces:
///  - Proposition 3: the sampling timestamp orders marked events exactly
///    like happens-before.
///  - Proposition 5: freshness-scalar comparison implies sampling-clock
///    ordering.
///  - Proposition 6: the freshness difference bounds the number of ahead
///    components.
///  - The component-sum bound of Section 4.1: sum_t C_sam(e)(t) <= |S|.
/// Plus the worked example of Figures 1 and 2, checked step by step against
/// a streaming run of Algorithms 2 and 3.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/HBClosureOracle.h"
#include "sampletrack/detectors/SamplingNaiveDetector.h"
#include "sampletrack/detectors/SamplingOrderedListDetector.h"
#include "sampletrack/detectors/SamplingUClockDetector.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/sampling/Sampler.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

using namespace sampletrack;

namespace {

Trace randomMarkedTrace(uint64_t Seed, double Rate) {
  GenConfig C;
  C.NumThreads = 5;
  C.NumLocks = 4;
  C.NumVars = 32;
  C.NumEvents = 300;
  C.UnprotectedFraction = 0.05;
  C.Seed = Seed;
  Trace T = generateWorkload(C);
  rapid::markTrace(T, Rate, Seed + 1);
  return T;
}

class PropertySweep
    : public ::testing::TestWithParam<std::pair<uint64_t, double>> {};

} // namespace

TEST_P(PropertySweep, Proposition3SamplingTimestampTracksHB) {
  auto [Seed, Rate] = GetParam();
  Trace T = randomMarkedTrace(Seed, Rate);
  HBClosureOracle Oracle(T);
  std::vector<VectorClock> Csam = Oracle.samplingTimestamps();

  for (size_t I = 0; I < T.size(); ++I) {
    if (!T[I].Marked)
      continue;
    for (size_t J = I + 1; J < T.size(); ++J) {
      if (T[I].Tid == T[J].Tid)
        continue;
      bool HB = Oracle.happensBefore(I, J);
      bool ScalarLeq =
          Csam[I].get(T[I].Tid) <= Csam[J].get(T[I].Tid);
      bool PointwiseLeq = Csam[I].leq(Csam[J]);
      EXPECT_EQ(ScalarLeq, HB) << "events " << I << "," << J;
      EXPECT_EQ(PointwiseLeq, HB) << "events " << I << "," << J;
    }
  }
}

// Propositions 5 and 6 are what make SU's and SO's skip/prefix decisions
// sound. Their operational content — "a skipped join would have been a
// no-op" and "the d-entry prefix covers every ahead component" — is
// captured exactly by the following lockstep invariant, which is the
// induction hypothesis of the Lemma 7/8 proofs: after every event, SU's
// and SO's sampling clocks are componentwise identical to ST's.
TEST_P(PropertySweep, LockstepClockEqualityAcrossEngines) {
  auto [Seed, Rate] = GetParam();
  Trace T = randomMarkedTrace(Seed, Rate);
  size_t NT = T.numThreads();

  SamplingNaiveDetector ST(NT);
  SamplingUClockDetector SU(NT);
  SamplingOrderedListDetector SO(NT, /*LocalEpochOpt=*/true);
  SamplingOrderedListDetector SON(NT, /*LocalEpochOpt=*/false);

  for (size_t I = 0; I < T.size(); ++I) {
    const Event &E = T[I];
    ST.processEvent(E, E.Marked);
    SU.processEvent(E, E.Marked);
    SO.processEvent(E, E.Marked);
    SON.processEvent(E, E.Marked);
    for (ThreadId A = 0; A < NT; ++A) {
      ASSERT_EQ(ST.localEpoch(A), SU.localEpoch(A)) << "event " << I;
      ASSERT_EQ(ST.localEpoch(A), SO.localEpoch(A)) << "event " << I;
      for (ThreadId B = 0; B < NT; ++B) {
        ClockValue Ref = ST.threadClock(A).get(B);
        ASSERT_EQ(SU.threadClock(A).get(B), Ref)
            << "SU clock diverged at event " << I << " C_" << A << "(" << B
            << ")";
        ASSERT_EQ(SO.effectiveComponent(A, B), Ref)
            << "SO clock diverged at event " << I << " C_" << A << "(" << B
            << ")";
        ASSERT_EQ(SON.effectiveComponent(A, B), Ref)
            << "SO-noepoch clock diverged at event " << I << " C_" << A
            << "(" << B << ")";
      }
    }
  }
}

TEST_P(PropertySweep, FreshnessTimestampMonotoneAndBounded) {
  auto [Seed, Rate] = GetParam();
  Trace T = randomMarkedTrace(Seed, Rate);
  HBClosureOracle Oracle(T);
  std::vector<VectorClock> U = Oracle.freshnessTimestamps();
  uint64_t SBound = T.countMarked() * T.numThreads();

  for (size_t I = 0; I < T.size(); ++I) {
    // U is monotone along HB (it is a max over the HB past)...
    for (size_t J = I + 1; J < std::min(T.size(), I + 40); ++J)
      if (Oracle.happensBefore(I, J)) {
        EXPECT_TRUE(U[I].leq(U[J])) << "events " << I << "," << J;
      }
    // ... and each component is bounded by |S| * T (the observation in the
    // proof of Lemma 7: clocks change at most |S| times, each change
    // touching at most T entries).
    for (ThreadId X = 0; X < T.numThreads(); ++X)
      EXPECT_LE(U[I].get(X), SBound);
  }
}

TEST_P(PropertySweep, ComponentSumBoundedBySampleSize) {
  auto [Seed, Rate] = GetParam();
  Trace T = randomMarkedTrace(Seed, Rate);
  HBClosureOracle Oracle(T);
  std::vector<VectorClock> Csam = Oracle.samplingTimestamps();
  uint64_t S = T.countMarked();
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_LE(Csam[I].componentSum(), S) << "event " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertySweep,
    ::testing::Values(std::pair<uint64_t, double>{1, 0.05},
                      std::pair<uint64_t, double>{2, 0.1},
                      std::pair<uint64_t, double>{3, 0.3},
                      std::pair<uint64_t, double>{4, 1.0},
                      std::pair<uint64_t, double>{5, 0.02},
                      std::pair<uint64_t, double>{6, 0.2}));

//===----------------------------------------------------------------------===//
// The worked example of Fig. 1 / Fig. 2.
//===----------------------------------------------------------------------===//

namespace {

/// Builds the 18-event execution of Fig. 1. Threads: t1 = 0, t2 = 1.
/// Locks l1..l4 = 0..3; x = 0. Marked events: e5, e15, e16.
Trace figure1Trace() {
  Trace T;
  T.acquire(0, 3);              // e1: acq(l4)
  T.acquire(0, 2);              // e2: acq(l3)
  T.acquire(0, 1);              // e3: acq(l2)
  T.acquire(0, 0);              // e4: acq(l1)
  T.write(0, 0, /*Marked=*/true);  // e5: w(x) in S
  T.release(0, 0);              // e6: rel(l1)
  T.write(0, 0);                // e7: w(x)
  T.acquire(1, 0);              // e8: acq(l1)
  T.write(1, 0);                // e9: w(x)
  T.release(0, 1);              // e10: rel(l2)
  T.write(0, 0);                // e11: w(x)
  T.acquire(1, 1);              // e12: acq(l2)
  T.release(0, 2);              // e13: rel(l3)
  T.acquire(1, 2);              // e14: acq(l3)
  T.write(0, 0, /*Marked=*/true);  // e15: w(x) in S
  T.write(0, 0, /*Marked=*/true);  // e16: w(x) in S
  T.release(0, 3);              // e17: rel(l4)
  T.acquire(1, 3);              // e18: acq(l4)
  return T;
}

} // namespace

TEST(Figure1Example, Algorithm2ClockEvolution) {
  Trace T = figure1Trace();
  ASSERT_TRUE(T.validate());

  SamplingNaiveDetector D(T.numThreads());
  MarkedSampler S;
  // Process up to (and including) e6 = index 5: the first release sends
  // <1,0> to l1 and bumps t1's local epoch to 2.
  for (size_t I = 0; I <= 5; ++I)
    D.processEvent(T[I], T[I].Marked);
  EXPECT_EQ(D.threadClock(0).get(0), 1u);
  EXPECT_EQ(D.localEpoch(0), 2u);

  // After e10 (rel(l2), index 9): NOT a RelAfter release — epoch unchanged,
  // clock still <1,0> (the paper highlights this step).
  for (size_t I = 6; I <= 9; ++I)
    D.processEvent(T[I], T[I].Marked);
  EXPECT_EQ(D.threadClock(0).get(0), 1u);
  EXPECT_EQ(D.localEpoch(0), 2u);

  // After e17 (rel(l4), index 16): e15/e16 were sampled, so the release
  // flushes: C_t1 = <2,0>, epoch 3.
  for (size_t I = 10; I <= 16; ++I)
    D.processEvent(T[I], T[I].Marked);
  EXPECT_EQ(D.threadClock(0).get(0), 2u);
  EXPECT_EQ(D.localEpoch(0), 3u);

  // e18: t2 receives <2,0>.
  D.processEvent(T[17], false);
  EXPECT_EQ(D.threadClock(1).get(0), 2u);
}

TEST(Figure2Example, Algorithm3SkipsRedundantAcquires) {
  Trace T = figure1Trace();
  SamplingUClockDetector D(T.numThreads());
  for (size_t I = 0; I < T.size(); ++I)
    D.processEvent(T[I], T[I].Marked);

  // The paper: e8 performs a join; e12 and e14 are skipped; e18 joins.
  // t2 performs 4 mutex acquires plus 0 others; 2 of them are skipped.
  // t1's four acquires (e1-e4) hit never-released locks and are skipped.
  const Metrics &M = D.metrics();
  EXPECT_EQ(M.AcquiresTotal, 8u);
  EXPECT_EQ(M.AcquiresProcessed, 2u) << "only e8 and e18 join";
  EXPECT_EQ(M.AcquiresSkipped, 6u);

  // Final clocks match the right-hand table of Fig. 2.
  EXPECT_EQ(D.threadClock(1).get(0), 2u);
  EXPECT_EQ(D.freshnessClock(1).get(0), 2u);
  EXPECT_EQ(D.freshnessClock(1).get(1), 2u) << "two entry updates at t2";
}

TEST(Figure1Example, NoRaceDeclaredAmongMarkedEvents) {
  // e5, e15, e16 are all by t1: no cross-thread marked pair exists, so no
  // engine may declare a race even though unmarked writes (e7/e9) race.
  Trace T = figure1Trace();
  HBClosureOracle Oracle(T);
  EXPECT_FALSE(Oracle.allRacePairs().empty())
      << "the trace does contain (unmarked) races";
  EXPECT_TRUE(Oracle.markedRacePairs().empty());
  EXPECT_TRUE(Oracle.declaredRaces(/*MarkedOnly=*/true).empty());
}
