//===- tools/bench_gate.cpp - CI bench regression gate ----------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI over perfgate::gateFiles: diff a fresh bench trajectory JSON against
/// the committed repo-root baseline and exit nonzero on regression.
///
///   bench_gate --baseline BENCH_fig5b.json --fresh fresh_fig5b.json
///              [--name fig5b] [--timing-tolerance 1.6]
///              [--throughput-tolerance 1.6] [--no-exact-counters]
///
/// CI runs one invocation per bench; the failure output names the bench,
/// the row and the regressed metric.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/perfgate/PerfGate.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sampletrack;

int main(int argc, char **argv) {
  std::string Baseline, Fresh, Name;
  perfgate::Tolerances Tol;
  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      if (A + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", Arg.c_str());
        exit(2);
      }
      return argv[++A];
    };
    if (Arg == "--baseline")
      Baseline = Next();
    else if (Arg == "--fresh")
      Fresh = Next();
    else if (Arg == "--name")
      Name = Next();
    else if (Arg == "--timing-tolerance")
      Tol.TimingRatio = std::atof(Next());
    else if (Arg == "--throughput-tolerance")
      Tol.ThroughputRatio = std::atof(Next());
    else if (Arg == "--no-exact-counters")
      Tol.ExactCounters = false;
    else {
      std::fprintf(stderr,
                   "usage: %s --baseline BENCH_x.json --fresh fresh.json "
                   "[--name x] [--timing-tolerance R] "
                   "[--throughput-tolerance R] [--no-exact-counters]\n",
                   argv[0]);
      return 2;
    }
  }
  if (Baseline.empty() || Fresh.empty()) {
    std::fprintf(stderr, "bench_gate: --baseline and --fresh are required\n");
    return 2;
  }
  if (Name.empty())
    Name = Baseline;

  perfgate::GateResult R;
  std::string Error;
  if (!perfgate::gateFiles(Baseline, Fresh, Tol, R, &Error)) {
    std::fprintf(stderr, "bench_gate: %s\n", Error.c_str());
    return 2;
  }
  std::fputs(perfgate::render(R, Name).c_str(), stdout);
  return R.passed() ? 0 : 1;
}
