//===- examples/offline_analysis.cpp - RAPID-style offline CLI --------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline trace analysis, mirroring the paper's RAPID experiments: load a
/// trace (from a file in the RAPID-like text/binary formats, or generated
/// from the 26-benchmark suite), and fan any subset of engines out over a
/// single traversal — every engine sees the identical sample set
/// (appendix A.1) because one api::AnalysisSession draws one decision
/// stream for all of them.
///
/// Usage:
///   offline_analysis --bench bufwriter [--scale 0.5] [--rate 0.03]
///   offline_analysis --file trace.txt [--rate 0.03] [--json out.json]
///   offline_analysis --list
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sampletrack;

namespace {

void usage() {
  std::printf(
      "usage: offline_analysis [--bench NAME | --file PATH] [--rate R]\n"
      "                        [--scale S] [--seed N] [--engines CSV]\n"
      "                        [--json PATH] [--csv PATH]\n"
      "       offline_analysis --list\n\n"
      "  --bench NAME   generate suite benchmark NAME (see --list)\n"
      "  --file PATH    read a RAPID-like text or binary trace\n"
      "  --rate R       sampling rate in [0,1], default 0.03\n"
      "  --scale S      suite trace scale factor, default 0.25\n"
      "  --seed N       sampling/generation seed, default 1\n"
      "  --engines CSV  engines to run, default ST,SU,SO\n"
      "  --json PATH    write the structured session result as JSON\n"
      "  --csv PATH     write one CSV row per engine\n"
      "  --stats        print structural trace statistics\n"
      "  --list         list the 26 suite benchmarks\n");
}

/// Splits a comma-separated engine list; exits with a diagnostic on an
/// unknown name (matching is case-insensitive).
std::vector<EngineKind> parseEngines(const std::string &Csv) {
  std::vector<EngineKind> Out;
  std::string Item;
  for (size_t Pos = 0; Pos <= Csv.size(); ++Pos) {
    if (Pos < Csv.size() && Csv[Pos] != ',') {
      Item += Csv[Pos];
      continue;
    }
    if (Item.empty())
      continue;
    std::optional<EngineKind> K = parseEngineKind(Item);
    if (!K) {
      std::fprintf(stderr, "error: unknown engine '%s'\n", Item.c_str());
      exit(1);
    }
    Out.push_back(*K);
    Item.clear();
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string Bench, File, EnginesCsv = "ST,SU,SO", JsonPath, CsvPath;
  double Rate = 0.03, Scale = 0.25;
  uint64_t Seed = 1;
  bool ShowStats = false;

  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      if (A + 1 >= argc) {
        usage();
        exit(2);
      }
      return argv[++A];
    };
    if (Arg == "--list") {
      for (const SuiteEntry &E : suiteEntries())
        std::printf("%-18s %8zu events  %s\n", E.Name.c_str(), E.BaseEvents,
                    E.Profile.c_str());
      return 0;
    }
    if (Arg == "--bench")
      Bench = Next();
    else if (Arg == "--file")
      File = Next();
    else if (Arg == "--rate")
      Rate = std::atof(Next());
    else if (Arg == "--scale")
      Scale = std::atof(Next());
    else if (Arg == "--seed")
      Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--engines")
      EnginesCsv = Next();
    else if (Arg == "--json")
      JsonPath = Next();
    else if (Arg == "--csv")
      CsvPath = Next();
    else if (Arg == "--stats")
      ShowStats = true;
    else {
      usage();
      return 2;
    }
  }

  Trace T;
  if (!File.empty()) {
    std::string Err;
    if (!readTraceFile(File, T, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  } else {
    if (Bench.empty())
      Bench = "bufwriter";
    if (!isSuiteBenchmark(Bench)) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                   Bench.c_str());
      return 1;
    }
    T = generateSuiteTrace(Bench, Scale, Seed);
  }

  std::string Err;
  if (!T.validate(&Err)) {
    std::fprintf(stderr, "error: invalid trace: %s\n", Err.c_str());
    return 1;
  }

  // One pipeline: every engine lane shares the Bernoulli decision stream,
  // so the sample set is identical across engines by construction, and the
  // trace is traversed once no matter how many engines run.
  api::SessionConfig Cfg;
  Cfg.Engines = parseEngines(EnginesCsv);
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = Rate;
  Cfg.Seed = Seed * 31 + 5;
  api::SessionResult R = api::AnalysisSession(Cfg).run(T);

  uint64_t SampleSize = R.Engines.empty() ? 0 : R.Engines[0].SampleSize;
  std::printf("trace: %zu events, %zu threads, %zu syncs, %zu vars, |S| = "
              "%llu (%.3g%%)\n\n",
              T.size(), T.numThreads(), T.numSyncs(), T.numVars(),
              static_cast<unsigned long long>(SampleSize), Rate * 100.0);
  if (ShowStats)
    std::printf("%s\n", TraceStats::of(T).str().c_str());

  Table Out({"engine", "races", "racy locs", "acq skip%", "rel skip%",
             "deep copies", "entries/acq", "full clk ops", "ms"});
  for (const api::EngineRun &E : R.Engines) {
    const Metrics &M = E.Stats;
    auto Pct = [](uint64_t Num, uint64_t Den) {
      return Den ? Table::fmt(100.0 * Num / Den, 1) : std::string("-");
    };
    std::string RaceCell = std::to_string(E.NumRaces);
    if (E.RacesTruncated)
      RaceCell += " (list capped)";
    Out.addRow({E.Engine, RaceCell, std::to_string(E.NumRacyLocations),
                Pct(M.AcquiresSkipped, M.AcquiresTotal),
                Pct(M.ReleasesSkipped, M.ReleasesTotal),
                std::to_string(M.DeepCopies),
                M.AcquiresTotal
                    ? Table::fmt(static_cast<double>(M.EntriesTraversed) /
                                     M.AcquiresTotal,
                                 2)
                    : "-",
                std::to_string(M.FullClockOps),
                Table::fmt(E.WallNanos / 1e6, 1)});
  }
  Out.print();

  if (!JsonPath.empty() &&
      !api::writeFile(JsonPath, api::toJson(R, /*MaxRaces=*/32)))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath.c_str());
  if (!CsvPath.empty() && !api::writeFile(CsvPath, api::toCsv(R)))
    std::fprintf(stderr, "warning: cannot write %s\n", CsvPath.c_str());
  return 0;
}
