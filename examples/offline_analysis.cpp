//===- examples/offline_analysis.cpp - RAPID-style offline CLI --------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline trace analysis, mirroring the paper's RAPID experiments: load a
/// trace (from a file in the RAPID-like text format, or generated from the
/// 26-benchmark suite), fix a sample set, and run any subset of engines on
/// identical samples, reporting per-engine work metrics.
///
/// Usage:
///   offline_analysis --bench bufwriter [--scale 0.5] [--rate 0.03]
///   offline_analysis --file trace.txt [--rate 0.03]
///   offline_analysis --list
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sampletrack;

namespace {

void usage() {
  std::printf(
      "usage: offline_analysis [--bench NAME | --file PATH] [--rate R]\n"
      "                        [--scale S] [--seed N] [--engines CSV]\n"
      "       offline_analysis --list\n\n"
      "  --bench NAME   generate suite benchmark NAME (see --list)\n"
      "  --file PATH    read a RAPID-like text trace\n"
      "  --rate R       sampling rate in [0,1], default 0.03\n"
      "  --scale S      suite trace scale factor, default 0.25\n"
      "  --seed N       sampling/generation seed, default 1\n"
      "  --engines CSV  engines to run, default ST,SU,SO\n"
      "  --stats        print structural trace statistics\n"
      "  --list         list the 26 suite benchmarks\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string Bench, File, EnginesCsv = "ST,SU,SO";
  double Rate = 0.03, Scale = 0.25;
  uint64_t Seed = 1;
  bool ShowStats = false;

  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      if (A + 1 >= argc) {
        usage();
        exit(2);
      }
      return argv[++A];
    };
    if (Arg == "--list") {
      for (const SuiteEntry &E : suiteEntries())
        std::printf("%-18s %8zu events  %s\n", E.Name.c_str(), E.BaseEvents,
                    E.Profile.c_str());
      return 0;
    }
    if (Arg == "--bench")
      Bench = Next();
    else if (Arg == "--file")
      File = Next();
    else if (Arg == "--rate")
      Rate = std::atof(Next());
    else if (Arg == "--scale")
      Scale = std::atof(Next());
    else if (Arg == "--seed")
      Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--engines")
      EnginesCsv = Next();
    else if (Arg == "--stats")
      ShowStats = true;
    else {
      usage();
      return 2;
    }
  }

  Trace T;
  if (!File.empty()) {
    std::string Err;
    if (!readTraceFile(File, T, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  } else {
    if (Bench.empty())
      Bench = "bufwriter";
    if (!isSuiteBenchmark(Bench)) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                   Bench.c_str());
      return 1;
    }
    T = generateSuiteTrace(Bench, Scale, Seed);
  }

  std::string Err;
  if (!T.validate(&Err)) {
    std::fprintf(stderr, "error: invalid trace: %s\n", Err.c_str());
    return 1;
  }

  // Fix one sample set so every engine sees identical marks
  // (apples-to-apples, as in appendix A.1).
  rapid::markTrace(T, Rate, Seed * 31 + 5);

  std::printf("trace: %zu events, %zu threads, %zu syncs, %zu vars, |S| = "
              "%zu (%.3g%%)\n\n",
              T.size(), T.numThreads(), T.numSyncs(), T.numVars(),
              T.countMarked(), Rate * 100.0);
  if (ShowStats)
    std::printf("%s\n", TraceStats::of(T).str().c_str());

  Table Out({"engine", "races", "racy locs", "acq skip%", "rel skip%",
             "deep copies", "entries/acq", "full clk ops", "ms"});

  std::string Item;
  for (size_t Pos = 0; Pos <= EnginesCsv.size(); ++Pos) {
    if (Pos < EnginesCsv.size() && EnginesCsv[Pos] != ',') {
      Item += EnginesCsv[Pos];
      continue;
    }
    if (Item.empty())
      continue;
    std::optional<EngineKind> K = parseEngineKind(Item);
    if (!K) {
      std::fprintf(stderr, "error: unknown engine '%s'\n", Item.c_str());
      return 1;
    }
    Item.clear();

    std::unique_ptr<Detector> D = createDetector(*K, T.numThreads());
    MarkedSampler S;
    rapid::RunResult R = rapid::run(T, *D, S);
    const Metrics &M = R.Stats;
    auto Pct = [](uint64_t Num, uint64_t Den) {
      return Den ? Table::fmt(100.0 * Num / Den, 1) : std::string("-");
    };
    Out.addRow({D->name(), std::to_string(R.NumRaces),
                std::to_string(R.NumRacyLocations),
                Pct(M.AcquiresSkipped, M.AcquiresTotal),
                Pct(M.ReleasesSkipped, M.ReleasesTotal),
                std::to_string(M.DeepCopies),
                M.AcquiresTotal
                    ? Table::fmt(static_cast<double>(M.EntriesTraversed) /
                                     M.AcquiresTotal,
                                 2)
                    : "-",
                std::to_string(M.FullClockOps),
                Table::fmt(R.WallNanos / 1e6, 1)});
  }
  Out.print();
  return 0;
}
