//===- examples/quickstart.cpp - Five-minute tour ---------------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a tiny racy execution with the Trace API and analyze it
/// through an api::AnalysisSession. Then fan three engines out over one
/// traversal of a bigger generated workload — same sample set for all of
/// them, trace read exactly once.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>

using namespace sampletrack;

int main() {
  std::printf("== SampleTrack quickstart ==\n\n");

  // ---------------------------------------------------------------------
  // 1. A hand-written execution with one real race.
  //
  //   t0: acq(l) w(x) rel(l) | w(y)
  //   t1:                    | acq(l) w(x) rel(l) | w(y)
  //
  // The writes to x are lock-protected (no race); the writes to y are not.
  // ---------------------------------------------------------------------
  Trace T;
  const VarId X = 0, Y = 1;
  const SyncId L = 0;
  T.acquire(0, L);
  T.write(0, X, /*Marked=*/true);
  T.release(0, L);
  T.write(0, Y, /*Marked=*/true);
  T.acquire(1, L);
  T.write(1, X, /*Marked=*/true);
  T.release(1, L);
  T.write(1, Y, /*Marked=*/true);

  // One engine (SO, Algorithm 4), replaying the Marked bits above as S.
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Marked;
  api::SessionResult R = api::AnalysisSession(Cfg).run(T);

  const api::EngineRun &So = R.Engines.front();
  std::printf("hand-written trace: %zu events, %llu race(s) declared\n",
              T.size(), static_cast<unsigned long long>(So.NumRaces));
  for (const RaceReport &Race : So.Races)
    std::printf("  race at event %llu: thread %u, variable V%llu (%s)\n",
                static_cast<unsigned long long>(Race.EventIndex), Race.Tid,
                static_cast<unsigned long long>(Race.Var),
                Race.Kind == OpKind::Write ? "write" : "read");

  // ---------------------------------------------------------------------
  // 2. Random sampling on a generated lock-heavy workload: compare the
  //    naive sampling engine (ST), the freshness-clock engine (SU) and the
  //    ordered-list engine (SO) on the exact same 3% sample set — one
  //    session, one pass over the trace.
  // ---------------------------------------------------------------------
  GenConfig Gen;
  Gen.NumThreads = 8;
  Gen.NumLocks = 16;
  Gen.NumEvents = 200000;
  Gen.Seed = 42;
  Trace Big = generateWorkload(Gen);

  api::SessionConfig FanOut;
  FanOut.Engines = {EngineKind::SamplingNaive, EngineKind::SamplingU,
                    EngineKind::SamplingO};
  FanOut.Sampling = api::SamplerKind::Bernoulli;
  FanOut.SamplingRate = 0.03;
  FanOut.Seed = 7;
  api::SessionResult Fan = api::AnalysisSession(FanOut).run(Big);

  std::printf("\ngenerated workload: %llu events, |S| = %llu\n",
              static_cast<unsigned long long>(Fan.EventsProcessed),
              static_cast<unsigned long long>(Fan.Engines[0].SampleSize));
  std::printf("%-6s %12s %12s %14s %10s\n", "engine", "acq skipped",
              "acq total", "full clk ops", "races");
  for (const api::EngineRun &E : Fan.Engines) {
    const Metrics &M = E.Stats;
    std::printf("%-6s %12llu %12llu %14llu %10llu\n", E.Engine.c_str(),
                static_cast<unsigned long long>(M.AcquiresSkipped),
                static_cast<unsigned long long>(M.AcquiresTotal),
                static_cast<unsigned long long>(M.FullClockOps),
                static_cast<unsigned long long>(M.RacesDeclared));
  }

  std::printf("\nAll three engines declare identical races (Lemmas 7/8); "
              "SU/SO just do far less timestamping work.\n");
  return 0;
}
