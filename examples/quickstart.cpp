//===- examples/quickstart.cpp - Five-minute tour ---------------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a tiny racy execution with the Trace API, run the SO
/// engine (Algorithm 4) on it, and inspect races and work metrics. Then do
/// the same with random sampling on a bigger generated workload.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>

using namespace sampletrack;

int main() {
  std::printf("== SampleTrack quickstart ==\n\n");

  // ---------------------------------------------------------------------
  // 1. A hand-written execution with one real race.
  //
  //   t0: acq(l) w(x) rel(l) | w(y)
  //   t1:                    | acq(l) w(x) rel(l) | w(y)
  //
  // The writes to x are lock-protected (no race); the writes to y are not.
  // ---------------------------------------------------------------------
  Trace T;
  const VarId X = 0, Y = 1;
  const SyncId L = 0;
  T.acquire(0, L);
  T.write(0, X, /*Marked=*/true);
  T.release(0, L);
  T.write(0, Y, /*Marked=*/true);
  T.acquire(1, L);
  T.write(1, X, /*Marked=*/true);
  T.release(1, L);
  T.write(1, Y, /*Marked=*/true);

  SamplingOrderedListDetector Engine(T.numThreads());
  MarkedSampler Everything; // The Marked bits above put all accesses in S.
  rapid::RunResult R = rapid::run(T, Engine, Everything);

  std::printf("hand-written trace: %zu events, %llu race(s) declared\n",
              T.size(),
              static_cast<unsigned long long>(R.NumRaces));
  for (const RaceReport &Race : Engine.races())
    std::printf("  race at event %llu: thread %u, variable V%llu (%s)\n",
                static_cast<unsigned long long>(Race.EventIndex), Race.Tid,
                static_cast<unsigned long long>(Race.Var),
                Race.Kind == OpKind::Write ? "write" : "read");

  // ---------------------------------------------------------------------
  // 2. Random sampling on a generated lock-heavy workload: compare the
  //    naive sampling engine (ST) with the ordered-list engine (SO) on the
  //    exact same sample set.
  // ---------------------------------------------------------------------
  GenConfig Cfg;
  Cfg.NumThreads = 8;
  Cfg.NumLocks = 16;
  Cfg.NumEvents = 200000;
  Cfg.Seed = 42;
  Trace Big = generateWorkload(Cfg);
  rapid::markTrace(Big, /*Rate=*/0.03, /*Seed=*/7); // 3% sample set

  std::printf("\ngenerated workload: %zu events, |S| = %zu\n", Big.size(),
              Big.countMarked());
  std::printf("%-6s %12s %12s %14s %10s\n", "engine", "acq skipped",
              "acq total", "full clk ops", "races");
  for (EngineKind K : {EngineKind::SamplingNaive, EngineKind::SamplingU,
                       EngineKind::SamplingO}) {
    std::unique_ptr<Detector> D = createDetector(K, Big.numThreads());
    MarkedSampler S;
    rapid::run(Big, *D, S);
    const Metrics &M = D->metrics();
    std::printf("%-6s %12llu %12llu %14llu %10llu\n",
                D->name().c_str(),
                static_cast<unsigned long long>(M.AcquiresSkipped),
                static_cast<unsigned long long>(M.AcquiresTotal),
                static_cast<unsigned long long>(M.FullClockOps),
                static_cast<unsigned long long>(M.RacesDeclared));
  }

  std::printf("\nAll three engines declare identical races (Lemmas 7/8); "
              "SU/SO just do far less timestamping work.\n");
  return 0;
}
