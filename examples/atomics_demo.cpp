//===- examples/atomics_demo.cpp - Non-mutex synchronization demo -----------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the appendix A.2 synchronization paths online: a
/// message-passing handoff over an instrumented atomic flag (release-store /
/// acquire-load), a barrier phase built on release-joins, and the same
/// handoff with the flag *not* instrumented — which every analysis mode
/// correctly reports as a race.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::rt;

namespace {

/// Runs the three scenarios under \p M and returns the race counts.
struct ScenarioRaces {
  uint64_t MessagePassing;
  uint64_t BarrierPhases;
  uint64_t BrokenHandoff;
};

ScenarioRaces runScenarios(Mode M) {
  ScenarioRaces Out{};

  // -- Scenario 1: correct message passing -------------------------------
  {
    Config C;
    C.AnalysisMode = M;
    C.SamplingRate = 1.0;
    C.MaxThreads = 8;
    Runtime Rt(C);
    AtomicFlag Flag(Rt);
    uint64_t Payload = 0;
    ThreadId A = Rt.registerThread(), B = Rt.registerThread();
    Rt.onFork(0, A);
    Rt.onFork(0, B);
    std::thread Producer([&] {
      Rt.onWrite(A, reinterpret_cast<uint64_t>(&Payload));
      Payload = 7;
      Flag.store(A, 1);
    });
    std::thread Consumer([&] {
      while (Flag.load(B) == 0)
        std::this_thread::yield();
      Rt.onRead(B, reinterpret_cast<uint64_t>(&Payload));
    });
    Producer.join();
    Consumer.join();
    Rt.onJoin(0, A);
    Rt.onJoin(0, B);
    Out.MessagePassing = Rt.raceCount();
  }

  // -- Scenario 2: barrier-separated phases ------------------------------
  {
    Config C;
    C.AnalysisMode = M;
    C.SamplingRate = 1.0;
    C.MaxThreads = 8;
    Runtime Rt(C);
    constexpr size_t N = 3;
    Barrier Bar(Rt, N);
    uint64_t Cells[N] = {};
    std::vector<ThreadId> Tids;
    for (size_t W = 0; W < N; ++W) {
      ThreadId T = Rt.registerThread();
      Rt.onFork(0, T);
      Tids.push_back(T);
    }
    std::vector<std::thread> Ws;
    for (size_t W = 0; W < N; ++W)
      Ws.emplace_back([&, W] {
        Rt.onWrite(Tids[W], reinterpret_cast<uint64_t>(&Cells[W]));
        Cells[W] = W;
        Bar.arriveAndWait(Tids[W]);
        for (size_t V = 0; V < N; ++V)
          Rt.onRead(Tids[W], reinterpret_cast<uint64_t>(&Cells[V]));
      });
    for (size_t W = 0; W < N; ++W) {
      Ws[W].join();
      Rt.onJoin(0, Tids[W]);
    }
    Out.BarrierPhases = Rt.raceCount();
  }

  // -- Scenario 3: handoff with uninstrumented flag (a real race) --------
  {
    Config C;
    C.AnalysisMode = M;
    C.SamplingRate = 1.0;
    C.MaxThreads = 8;
    Runtime Rt(C);
    std::atomic<uint64_t> RawFlag{0};
    uint64_t Payload = 0;
    ThreadId A = Rt.registerThread(), B = Rt.registerThread();
    Rt.onFork(0, A);
    Rt.onFork(0, B);
    std::thread Producer([&] {
      Rt.onWrite(A, reinterpret_cast<uint64_t>(&Payload));
      Payload = 7;
      RawFlag.store(1, std::memory_order_release);
    });
    std::thread Consumer([&] {
      while (RawFlag.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();
      Rt.onRead(B, reinterpret_cast<uint64_t>(&Payload));
    });
    Producer.join();
    Consumer.join();
    Rt.onJoin(0, A);
    Rt.onJoin(0, B);
    Out.BrokenHandoff = Rt.raceCount();
  }

  return Out;
}

} // namespace

int main() {
  std::printf("== Non-mutex synchronization (appendix A.2) demo ==\n\n");
  std::printf("%-6s %-18s %-18s %-18s\n", "mode", "message passing",
              "barrier phases", "broken handoff");
  for (Mode M : {Mode::FT, Mode::ST, Mode::SU, Mode::SO}) {
    ScenarioRaces R = runScenarios(M);
    std::printf("%-6s %-18s %-18s %-18s\n", modeName(M),
                R.MessagePassing == 0 ? "race-free (ok)" : "RACE (bug!)",
                R.BarrierPhases == 0 ? "race-free (ok)" : "RACE (bug!)",
                R.BrokenHandoff > 0 ? "race found (ok)" : "MISSED (bug!)");
  }
  std::printf("\nrelease-store/acquire-load and release-join edges are "
              "tracked by all engines;\nthe sampling engines still skip "
              "redundant ones where appendix A.2 allows.\n");
  return 0;
}
