//===- examples/dbserver_sim.cpp - Online detection demo --------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online demo, mirroring the paper's MySQL experiment in miniature: run a
/// BenchBase-style OLTP workload with real client threads under each
/// analysis configuration and report average request latency. Shows the
/// ladder the paper measures: NT < ET < ST/SU/SO < FT.
///
/// Usage: dbserver_sim [--bench tpcc] [--clients N] [--requests N]
///                     [--rate R] [--seed N]
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::workload;

int main(int argc, char **argv) {
  std::string Bench = "tpcc";
  size_t Clients = std::min<size_t>(8, std::thread::hardware_concurrency());
  size_t Requests = 1500;
  double Rate = 0.03;
  uint64_t Seed = 1;

  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      if (A + 1 >= argc)
        exit(2);
      return argv[++A];
    };
    if (Arg == "--bench")
      Bench = Next();
    else if (Arg == "--clients")
      Clients = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--requests")
      Requests = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--rate")
      Rate = std::atof(Next());
    else if (Arg == "--seed")
      Seed = std::strtoull(Next(), nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: dbserver_sim [--bench NAME] [--clients N] "
                   "[--requests N] [--rate R] [--seed N]\n"
                   "benchmarks:");
      for (const BenchmarkSpec &S : benchbaseSuite())
        std::fprintf(stderr, " %s", S.Name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  const BenchmarkSpec *Spec = findBenchmark(Bench);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown benchmark '%s'\n", Bench.c_str());
    return 1;
  }

  std::printf("benchmark %s: %zu clients x %zu requests, sampling %.3g%%\n\n",
              Bench.c_str(), Clients, Requests, Rate * 100.0);

  Table Out({"config", "mean us", "p95 us", "rel vs NT", "acq skip%",
             "races", "racy locs"});
  double NtMean = 0;

  for (rt::Mode M : {rt::Mode::NT, rt::Mode::ET, rt::Mode::FT, rt::Mode::ST,
                     rt::Mode::SU, rt::Mode::SO}) {
    RunConfig C;
    C.NumClients = Clients;
    C.RequestsPerClient = Requests;
    C.Seed = Seed;
    C.Rt.AnalysisMode = M;
    C.Rt.SamplingRate = Rate;
    C.Rt.MaxThreads = Clients + 2;

    RunStats R = runBenchmark(*Spec, C);
    if (M == rt::Mode::NT)
      NtMean = R.LatencyNs.Mean;
    const Metrics &Mx = R.Stats;
    Out.addRow(
        {R.ModeLabel, Table::fmt(R.LatencyNs.Mean / 1e3, 1),
         Table::fmt(R.LatencyNs.P95 / 1e3, 1),
         NtMean > 0 ? Table::fmt(R.LatencyNs.Mean / NtMean, 2) : "-",
         Mx.AcquiresTotal
             ? Table::fmt(100.0 * Mx.AcquiresSkipped / Mx.AcquiresTotal, 1)
             : "-",
         std::to_string(R.Races), std::to_string(R.RacyLocations)});
  }
  Out.print();
  std::printf("\nNT = no instrumentation, ET = hooks only, FT = full "
              "FastTrack,\nST/SU/SO = the paper's sampling engines at the "
              "chosen rate.\n");
  return 0;
}
