//===- examples/storage_demo.cpp - Instrumented storage engine demo ---------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the mini storage engine (B-tree + buffer pool + WAL) under
/// concurrent clients with each analysis configuration, printing throughput
/// and the analysis work profile. This is the closest analogue in this
/// repository to "MySQL under a modified ThreadSanitizer": a deep latch
/// hierarchy (root latch -> node latches -> pool map latch -> WAL latch)
/// where the sampling engines' skipped acquires pay off directly.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"
#include "sampletrack/workload/StorageEngine.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::db;

namespace {

struct DemoResult {
  double OpsPerSec;
  uint64_t Acquires;
  double AcquireSkipPct;
  uint64_t Races;
};

DemoResult runOnce(rt::Mode M, double Rate, size_t Workers, size_t Ops) {
  rt::Config C;
  C.AnalysisMode = M;
  C.SamplingRate = Rate;
  C.MaxThreads = 16;
  rt::Runtime Rt(C);
  Database Db(Rt, /*NumTables=*/4, /*PoolFrames=*/512, /*DiskPages=*/8192);

  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < Workers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      ThreadId T = Tids[W];
      SplitMix64 Rng(W * 997 + 3);
      for (size_t I = 0; I < Ops; ++I) {
        size_t Table = Rng.nextBelow(4);
        uint64_t Key = Rng.nextBelow(4000);
        if (Rng.nextBool(0.4))
          Db.put(T, Table, Key, I);
        else {
          uint64_t V;
          Db.get(T, Table, Key, V);
        }
      }
    });
  }
  for (size_t W = 0; W < Workers; ++W) {
    Threads[W].join();
    Rt.onJoin(0, Tids[W]);
  }
  auto End = std::chrono::steady_clock::now();
  double Secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();

  Metrics Agg = Rt.aggregatedMetrics();
  DemoResult R;
  R.OpsPerSec = static_cast<double>(Workers * Ops) / std::max(Secs, 1e-9);
  R.Acquires = Agg.AcquiresTotal;
  R.AcquireSkipPct = Agg.AcquiresTotal ? 100.0 * Agg.AcquiresSkipped /
                                             Agg.AcquiresTotal
                                       : 0.0;
  R.Races = Rt.raceCount();
  return R;
}

} // namespace

int main() {
  std::printf("== Mini storage engine under race detection ==\n\n");
  const size_t Workers = 4, Ops = 4000;
  std::printf("%zu clients x %zu ops (40%% transactional puts with WAL, "
              "60%% B-tree lookups)\n\n",
              Workers, Ops);
  std::printf("%-8s %12s %12s %10s %7s\n", "config", "ops/sec", "acquires",
              "acq skip%", "races");

  struct Cfg {
    const char *Label;
    rt::Mode M;
    double Rate;
  };
  const Cfg Cfgs[] = {
      {"NT", rt::Mode::NT, 0},       {"ET", rt::Mode::ET, 0},
      {"FT", rt::Mode::FT, 0},       {"ST3%", rt::Mode::ST, 0.03},
      {"SU3%", rt::Mode::SU, 0.03},  {"SO3%", rt::Mode::SO, 0.03},
  };
  for (const Cfg &C : Cfgs) {
    DemoResult R = runOnce(C.M, C.Rate, Workers, Ops);
    std::printf("%-8s %12.0f %12llu %10.1f %7llu\n", C.Label, R.OpsPerSec,
                static_cast<unsigned long long>(R.Acquires),
                R.AcquireSkipPct, static_cast<unsigned long long>(R.Races));
  }

  std::printf("\nThe engine is race-free by construction: every 'races'\n"
              "entry must be 0. The sampling engines skip most node-latch\n"
              "acquires because few sampled accesses dirty the clocks.\n");
  return 0;
}
