//===- examples/triaged_tool.cpp - Fleet ingestion service CLI --------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The triaged fleet service as a command-line tool: run the server, upload
/// runs to it, pull the warehouse views back, and smoke the end-to-end
/// regression gate over HTTP.
///
///   triaged_tool serve   [--port P] [--store PATH] [--suppressions PATH]
///                        [--workers N] [--port-file PATH]
///   triaged_tool upload  --port P [--host H] [--seq K] FILE...
///   triaged_tool get     --port P [--host H] PATH
///   triaged_tool gate    --port P [--host H]
///   triaged_tool compact --store PATH
///
/// `serve` binds (port 0 = ephemeral, written to --port-file so scripts can
/// discover it), then serves until SIGINT/SIGTERM, which drains in-flight
/// uploads and exits — every acknowledged upload was journaled and fsynced
/// before its 200, so there is no final save to lose.
///
/// `compact` folds a store directory's run journal into a fresh base
/// segment offline (the server also compacts in the background; this is
/// for operators reclaiming space on a stopped warehouse, and it migrates
/// a legacy single-file store in the process).
///
/// `upload` ships traces or "STSG" signature summaries (sniffed per file);
/// with --seq K the files are sequenced K, K+1, ... so concurrent shards
/// can coordinate deterministic merge order.
///
/// `gate` is race_triage's three-deployment contract spoken over the wire:
/// day 1 seeds the warehouse, day 2 (same build) must introduce 0 new
/// races, day 3 (buggy patch) exactly 1. Exit code enforces it, so CI can
/// smoke a live server.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace sampletrack;

namespace {

volatile std::sig_atomic_t GStopRequested = 0;

void onSignal(int) { GStopRequested = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: triaged_tool serve [--port P] [--store PATH] "
      "[--suppressions PATH] [--workers N] [--port-file PATH]\n"
      "       triaged_tool upload --port P [--host H] [--seq K] FILE...\n"
      "       triaged_tool get --port P [--host H] PATH\n"
      "       triaged_tool gate --port P [--host H]\n"
      "       triaged_tool compact --store PATH\n");
  return 2;
}

int compactMode(int argc, char **argv) {
  std::string StorePath;
  for (int A = 2; A < argc; ++A) {
    std::string Arg = argv[A];
    if (Arg == "--store" && A + 1 < argc)
      StorePath = argv[++A];
    else
      return usage();
  }
  if (StorePath.empty())
    return usage();

  triage::TriageLog Log;
  std::string Err;
  if (!Log.open(StorePath, {}, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!Log.recoveryNote().empty())
    std::fprintf(stderr, "triaged: recovered: %s\n",
                 Log.recoveryNote().c_str());
  uint64_t JournalBefore = Log.journalBytes();

  // Force the fold regardless of the ratio trigger — the operator asked.
  triage::TriageLog::CompactionPlan P;
  if (!Log.beginCompaction(P) || !Log.prepareCompaction(P, &Err) ||
      !Log.commitCompaction(P, &Err)) {
    std::fprintf(stderr, "error: compaction failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("%s: generation %llu: %u run(s), %llu journal byte(s) folded "
              "into a %llu-byte base\n",
              StorePath.c_str(),
              static_cast<unsigned long long>(Log.generation()),
              Log.store().runCount(),
              static_cast<unsigned long long>(JournalBefore),
              static_cast<unsigned long long>(Log.baseBytes()));
  return 0;
}

int serveMode(int argc, char **argv) {
  triaged::ServerConfig Cfg;
  std::string PortFile;
  for (int A = 2; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      if (A + 1 >= argc)
        exit(usage());
      return argv[++A];
    };
    if (Arg == "--port")
      Cfg.Port = static_cast<uint16_t>(std::atoi(Next()));
    else if (Arg == "--store")
      Cfg.StorePath = Next();
    else if (Arg == "--suppressions")
      Cfg.SuppressionFile = Next();
    else if (Arg == "--workers")
      Cfg.NumWorkers = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--port-file")
      PortFile = Next();
    else
      return usage();
  }

  triaged::Server S(Cfg);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr, "triaged: serving on %s:%u%s%s\n",
               Cfg.BindAddress.c_str(), S.port(),
               Cfg.StorePath.empty() ? "" : ", store ",
               Cfg.StorePath.c_str());
  if (!PortFile.empty()) {
    std::ofstream Pf(PortFile);
    Pf << S.port() << "\n";
    if (!Pf) {
      std::fprintf(stderr, "error: cannot write '%s'\n", PortFile.c_str());
      S.stop();
      return 1;
    }
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!GStopRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::fprintf(stderr, "triaged: draining...\n");
  S.stop();
  triaged::ServerStats St = S.stats();
  std::fprintf(stderr,
               "triaged: served %llu request(s), accepted %llu upload(s)\n",
               static_cast<unsigned long long>(St.RequestsServed),
               static_cast<unsigned long long>(St.UploadsAccepted));
  return 0;
}

struct Endpoint {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
};

bool parseEndpoint(int argc, char **argv, int &A, Endpoint &Ep,
                   std::string Arg) {
  auto Next = [&]() -> const char * {
    if (A + 1 >= argc)
      exit(usage());
    return argv[++A];
  };
  if (Arg == "--port")
    Ep.Port = static_cast<uint16_t>(std::atoi(Next()));
  else if (Arg == "--host")
    Ep.Host = Next();
  else
    return false;
  return true;
}

int uploadMode(int argc, char **argv) {
  Endpoint Ep;
  uint64_t Seq = 0;
  std::vector<std::string> Files;
  for (int A = 2; A < argc; ++A) {
    std::string Arg = argv[A];
    if (parseEndpoint(argc, argv, A, Ep, Arg))
      continue;
    if (Arg == "--seq") {
      if (A + 1 >= argc)
        return usage();
      Seq = std::strtoull(argv[++A], nullptr, 10);
    } else if (!Arg.empty() && Arg[0] == '-')
      return usage();
    else
      Files.push_back(Arg);
  }
  if (Ep.Port == 0 || Files.empty())
    return usage();

  triaged::Client C(Ep.Host, Ep.Port);
  for (size_t I = 0; I < Files.size(); ++I) {
    triaged::UploadOutcome Up;
    std::string Err;
    uint64_t S = Seq ? Seq + I : 0;
    if (!C.uploadFile(Files[I], Up, &Err, S)) {
      std::fprintf(stderr, "error: %s: %s\n", Files[I].c_str(),
                   Err.c_str());
      return 1;
    }
    std::printf("%s: run %u: %llu declaration(s) -> %llu signature(s): "
                "%llu new, %llu known, %llu regressed, %llu suppressed\n",
                Files[I].c_str(), Up.Run,
                static_cast<unsigned long long>(Up.Declared),
                static_cast<unsigned long long>(Up.Distinct),
                static_cast<unsigned long long>(Up.NewCount),
                static_cast<unsigned long long>(Up.KnownCount),
                static_cast<unsigned long long>(Up.RegressedCount),
                static_cast<unsigned long long>(Up.SuppressedCount));
  }
  return 0;
}

int getMode(int argc, char **argv) {
  Endpoint Ep;
  std::string Path;
  for (int A = 2; A < argc; ++A) {
    std::string Arg = argv[A];
    if (parseEndpoint(argc, argv, A, Ep, Arg))
      continue;
    if (!Arg.empty() && Arg[0] == '/')
      Path = Arg;
    else
      return usage();
  }
  if (Ep.Port == 0 || Path.empty())
    return usage();

  triaged::Client C(Ep.Host, Ep.Port);
  triaged::Client::Response Resp;
  std::string Err;
  if (!C.get(Path, Resp, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::fputs(Resp.Body.c_str(), stdout);
  if (Resp.Status != 200) {
    std::fprintf(stderr, "error: HTTP %d\n", Resp.Status);
    return 1;
  }
  return 0;
}

/// One "deployment" of the simulated service — the same deterministic
/// workload race_triage analyzes locally (same shape, same seed, same
/// injected bug), here shipped to the server as a binary trace.
Trace deploymentTrace(uint64_t Seed, bool InjectBug) {
  GenConfig G;
  G.NumThreads = 8;
  G.NumLocks = 12;
  G.NumVars = 256;
  G.NumEvents = 40000;
  G.UnprotectedFraction = 0.05;
  G.RacyVars = 6;
  G.Seed = Seed;
  Trace T = generateWorkload(G);
  if (InjectBug) {
    // The patch: a new lock-free fast path over a fresh shared cell.
    T.write(1, 100000, /*Marked=*/true);
    T.write(2, 100000, /*Marked=*/true);
  }
  return T;
}

int gateMode(int argc, char **argv) {
  Endpoint Ep;
  for (int A = 2; A < argc; ++A)
    if (!parseEndpoint(argc, argv, A, Ep, argv[A]))
      return usage();
  if (Ep.Port == 0)
    return usage();

  triaged::Client C(Ep.Host, Ep.Port);
  std::printf("== Race triage over the wire: three deployments ==\n\n");

  const char *Labels[3] = {"day 1 (fresh store)   ",
                           "day 2 (same build)    ",
                           "day 3 (buggy patch)   "};
  triaged::UploadOutcome Up[3];
  for (int Day = 0; Day < 3; ++Day) {
    Trace T = deploymentTrace(/*Seed=*/42, /*InjectBug=*/Day == 2);
    std::string Err;
    if (!C.uploadTrace(T, Up[Day], &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("%s: %llu declaration(s) -> %llu signature(s): "
                "%llu new, %llu known, %llu regressed, %llu suppressed\n",
                Labels[Day],
                static_cast<unsigned long long>(Up[Day].Declared),
                static_cast<unsigned long long>(Up[Day].Distinct),
                static_cast<unsigned long long>(Up[Day].NewCount),
                static_cast<unsigned long long>(Up[Day].KnownCount),
                static_cast<unsigned long long>(Up[Day].RegressedCount),
                static_cast<unsigned long long>(Up[Day].SuppressedCount));
  }

  triaged::Client::Response Dash;
  std::string Err;
  if (!C.get("/v1/dashboard", Dash, &Err) || Dash.Status != 200) {
    std::fprintf(stderr, "error: /v1/dashboard: %s (HTTP %d)\n",
                 Err.c_str(), Dash.Status);
    return 1;
  }
  std::printf("\n/v1/dashboard: %zu byte(s) of warehouse JSON\n",
              Dash.Body.size());

  bool Ok = Up[1].NewCount == 0 && Up[2].NewCount == 1;
  std::printf("\nday-2 new races: %llu (want 0), day-3 new races: %llu "
              "(want 1) -> %s\n",
              static_cast<unsigned long long>(Up[1].NewCount),
              static_cast<unsigned long long>(Up[2].NewCount),
              Ok ? "OK" : "FAILED");
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Mode = argv[1];
  if (Mode == "serve")
    return serveMode(argc, argv);
  if (Mode == "upload")
    return uploadMode(argc, argv);
  if (Mode == "get")
    return getMode(argc, argv);
  if (Mode == "gate")
    return gateMode(argc, argv);
  if (Mode == "compact")
    return compactMode(argc, argv);
  return usage();
}
