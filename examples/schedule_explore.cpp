//===- examples/schedule_explore.cpp - Schedule exploration -----------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule-exploration workflow end to end, with its correctness gate:
///
///  1. The textbook schedule-dependent race — a write published through a
///     release-store that the second thread may or may not acquire-load in
///     time. Exhaustive enumeration proves the point the subsystem exists
///     for: "how many interleavings expose this race" is a number (5 of 6),
///     not folklore.
///  2. A lock-structured generated workload, projected into per-thread
///     programs and re-interleaved by the seeded-random and PCT explorers;
///     every engine is cross-checked against the exact-HB oracle on every
///     schedule.
///  3. The online loop: a tiny OLTP benchmark run records its execution
///     (workload::recordPrograms), and the explorer analyzes neighbors of
///     the interleaving the OS happened to pick.
///
/// The exit code enforces the gates (exact exhaustive counts, oracle
/// agreement everywhere), so CI smoke-runs this binary.
///
/// Flags: --schedules N (random/PCT budget), --seed S, --json PATH (dump
/// the part-2 coverage report).
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace sampletrack;

namespace {

bool Failed = false;

void gate(bool Ok, const char *What) {
  std::printf("  [%s] %s\n", Ok ? "ok" : "FAIL", What);
  Failed = Failed || !Ok;
}

void printCoverage(const explore::ExploreReport &R) {
  std::printf("  %s: %llu schedule(s), %llu deadlocked, %llu duplicate, "
              "%llu racy (oracle), agreement %s\n",
              R.Mode.c_str(),
              static_cast<unsigned long long>(R.SchedulesRun),
              static_cast<unsigned long long>(R.DeadlockedSchedules),
              static_cast<unsigned long long>(R.DuplicateSchedules),
              static_cast<unsigned long long>(R.SchedulesWithOracleRaces),
              R.AllAgreed ? "clean" : "BROKEN");
  for (const explore::EngineCoverage &E : R.Engines)
    std::printf("    %-10s checked %llu/%llu agreed, %llu distinct "
                "signature(s), detection rate %.2f\n",
                E.Engine.c_str(),
                static_cast<unsigned long long>(E.SchedulesAgreed),
                static_cast<unsigned long long>(E.SchedulesChecked),
                static_cast<unsigned long long>(E.DistinctSignatures),
                E.DetectionRate);
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Schedules = 12;
  uint64_t Seed = 1;
  std::string JsonPath;
  for (int A = 1; A < Argc; ++A) {
    auto Next = [&]() -> const char * {
      if (A + 1 >= Argc) {
        std::fprintf(stderr, "missing value for %s\n", Argv[A]);
        std::exit(2);
      }
      return Argv[++A];
    };
    if (!std::strcmp(Argv[A], "--schedules"))
      Schedules = std::strtoull(Next(), nullptr, 10);
    else if (!std::strcmp(Argv[A], "--seed"))
      Seed = std::strtoull(Next(), nullptr, 10);
    else if (!std::strcmp(Argv[A], "--json"))
      JsonPath = Next();
    else {
      std::fprintf(stderr,
                   "usage: %s [--schedules N] [--seed S] [--json PATH]\n",
                   Argv[0]);
      return 2;
    }
  }

  // -- 1. The schedule-dependent race, counted exhaustively. -------------
  std::printf("== 1. release-store publish race, exhaustive ==\n");
  explore::Workload Publish;
  ThreadId P0 = Publish.addThread(), P1 = Publish.addThread();
  Publish.write(P0, 0);        // T0: unsynchronized write ...
  Publish.releaseStore(P0, 0); //     ... published via release-store.
  Publish.acquireLoad(P1, 0);  // T1: may or may not see the publish ...
  Publish.write(P1, 0);        //     ... before touching the same cell.

  api::SessionConfig Full;
  Full.Sampling = api::SamplerKind::Always;
  explore::ExploreConfig Exhaustive;
  Exhaustive.Mode = explore::ExploreMode::Exhaustive;
  Exhaustive.MaxSchedules = 0;
  explore::ExploreReport R1 = api::runExploration(Full, Publish, Exhaustive);
  printCoverage(R1);
  gate(R1.SchedulesRun == 6, "all C(4,2) = 6 interleavings enumerated");
  gate(R1.SchedulesWithOracleRaces == 5,
       "exactly 5 of 6 interleavings expose the race");
  gate(R1.AllAgreed, "every engine matches the oracle on every schedule");

  // -- 2. Re-interleaving a lock-structured workload. --------------------
  std::printf("== 2. generated workload, random + pct exploration ==\n");
  GenConfig G;
  G.NumThreads = 4;
  G.NumLocks = 4;
  G.NumVars = 64;
  G.NumEvents = 600;
  G.UnprotectedFraction = 0.05;
  G.Seed = Seed;
  explore::Workload W = explore::Workload::fromTrace(generateWorkload(G));

  api::SessionConfig Sampled;
  Sampled.Sampling = api::SamplerKind::Bernoulli;
  Sampled.SamplingRate = 0.3;
  Sampled.Seed = Seed;

  explore::ExploreReport RandomReport;
  for (explore::ExploreMode M :
       {explore::ExploreMode::Random, explore::ExploreMode::Pct}) {
    explore::ExploreConfig EC;
    EC.Mode = M;
    EC.Seed = Seed;
    EC.MaxSchedules = Schedules;
    explore::ExploreReport R = api::runExploration(Sampled, W, EC);
    printCoverage(R);
    gate(R.SchedulesRun > 0, "schedules were emitted");
    gate(R.AllAgreed, "oracle agreement across all schedules");
    if (M == explore::ExploreMode::Random)
      RandomReport = R;
  }

  // -- 3. Record an online run, explore its neighbors. -------------------
  std::printf("== 3. recorded OLTP run, re-scheduled ==\n");
  workload::BenchmarkSpec Spec = *workload::findBenchmark("smallbank");
  Spec.RowsPerTable = 32;
  Spec.OpsMin = 2;
  Spec.OpsMax = 6;
  Spec.UnprotectedProb = 0.1;

  workload::RunConfig RC;
  RC.NumClients = 2;
  RC.RequestsPerClient = 5;
  RC.Seed = Seed;
  RC.Rt.AnalysisMode = rt::Mode::SO;
  RC.Rt.SamplingRate = 1.0;
  RC.Rt.MaxThreads = 4;
  explore::Workload Recorded = workload::recordPrograms(Spec, RC);
  std::printf("  recorded %zu schedule points over %zu threads\n",
              Recorded.numOps(), Recorded.numThreads());

  explore::ExploreConfig EC3;
  EC3.Mode = explore::ExploreMode::Random;
  EC3.Seed = Seed;
  EC3.MaxSchedules = std::min<size_t>(Schedules, 6);
  api::SessionConfig Cfg3;
  Cfg3.Engines = {EngineKind::Djit, EngineKind::SamplingO};
  Cfg3.Sampling = api::SamplerKind::Always;
  explore::ExploreReport R3 = api::runExploration(Cfg3, Recorded, EC3);
  printCoverage(R3);
  gate(R3.SchedulesRun > 0, "recorded programs re-interleave");
  gate(R3.AllAgreed, "oracle agreement on re-scheduled OLTP executions");

  if (!JsonPath.empty()) {
    if (api::writeFile(JsonPath, explore::toJson(RandomReport)))
      std::printf("(coverage report written to %s)\n", JsonPath.c_str());
    else {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      Failed = true;
    }
  }

  std::printf(Failed ? "\nFAILED\n" : "\nall gates passed\n");
  return Failed ? 1 : 0;
}
