//===- examples/tracegen_tool.cpp - Trace generation CLI --------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates synthetic executions (the 26-benchmark suite or the
/// parameterized workload generator) and writes them in the RAPID-like
/// text format, so they can be archived, inspected, or fed back through
/// offline_analysis --file.
///
/// Usage:
///   tracegen_tool --bench sor --scale 0.5 -o sor.trace
///   tracegen_tool --threads 8 --locks 16 --events 100000 -o wl.trace
///   tracegen_tool --corpus 8 --threads 4 --events 20000 -o corpus_dir
///   tracegen_tool --threads 4 --events 20000 -o wl.trace --summary wl.sig
///
/// Corpus mode writes N related binary traces into the -o directory: one
/// workload shape, N seeds, a shared racy-variable pool — so consecutive
/// traces declare overlapping racy pairs, the realistic multi-run input
/// the triage warehouse dedups (see `race_triage --corpus`).
///
/// --summary additionally analyzes each generated trace with the canonical
/// fleet configuration (triaged::fleetAnalysisConfig — the same one a
/// triaged server applies to binary-trace uploads) and writes the
/// pre-deduplicated signature summary: the lightweight "STSG" artifact a
/// CI shard uploads instead of the full trace. In corpus mode --summary
/// names a directory that gets one run_NNN.sig per trace.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sampletrack;

namespace {

/// Analyzes \p T under the canonical fleet configuration and writes the
/// deduplicated signature summary to \p Path.
bool writeSummaryFor(const Trace &T, const std::string &Path) {
  api::SessionResult R =
      api::AnalysisSession(triaged::fleetAnalysisConfig()).run(T);
  std::string Err;
  if (!triaged::writeSummaryFile(Path, R.Triage, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %zu signature(s) to %s\n",
               R.Triage.distinct(), Path.c_str());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string Bench, Out = "-", SummaryOut;
  bool Binary = false;
  double Scale = 0.25;
  uint64_t Seed = 1;
  size_t Corpus = 0;
  GenConfig G;
  bool UseGen = false;

  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      if (A + 1 >= argc)
        exit(2);
      return argv[++A];
    };
    if (Arg == "--bench")
      Bench = Next();
    else if (Arg == "--scale")
      Scale = std::atof(Next());
    else if (Arg == "--seed")
      Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "-o")
      Out = Next();
    else if (Arg == "--binary")
      Binary = true;
    else if (Arg == "--threads") {
      G.NumThreads = std::strtoull(Next(), nullptr, 10);
      UseGen = true;
    } else if (Arg == "--locks") {
      G.NumLocks = std::strtoull(Next(), nullptr, 10);
      UseGen = true;
    } else if (Arg == "--events") {
      G.NumEvents = std::strtoull(Next(), nullptr, 10);
      UseGen = true;
    } else if (Arg == "--access-frac") {
      G.AccessFraction = std::atof(Next());
      UseGen = true;
    } else if (Arg == "--corpus") {
      Corpus = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--summary") {
      SummaryOut = Next();
    } else {
      std::fprintf(stderr,
                   "usage: tracegen_tool [--bench NAME --scale S | "
                   "--threads N --locks N --events N [--access-frac F]] "
                   "[--corpus N] [--seed N] [-o PATH] [--binary] "
                   "[--summary PATH]\n");
      return 2;
    }
  }

  if (Corpus) {
    // N related runs of one workload: same shape and racy pool, rotated
    // seeds. -o names the output directory (created if missing).
    if (Out == "-") {
      std::fprintf(stderr, "error: --corpus needs -o DIR\n");
      return 2;
    }
    std::error_code Ec;
    std::filesystem::create_directories(Out, Ec);
    if (!SummaryOut.empty())
      std::filesystem::create_directories(SummaryOut, Ec);
    if (Ec) {
      std::fprintf(stderr, "error: cannot create output directories\n");
      return 1;
    }
    for (size_t I = 0; I < Corpus; ++I) {
      GenConfig C = G;
      C.Seed = Seed + I;
      Trace T = generateWorkload(C);
      std::string Err;
      if (!T.validate(&Err)) {
        std::fprintf(stderr, "internal error: invalid trace %zu: %s\n", I,
                     Err.c_str());
        return 1;
      }
      char Name[64];
      std::snprintf(Name, sizeof(Name), "/run_%03zu.trace.bin", I);
      std::string Path = Out + Name;
      if (!writeTraceFileBinary(Path, T)) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %zu events to %s\n", T.size(),
                   Path.c_str());
      if (!SummaryOut.empty()) {
        std::snprintf(Name, sizeof(Name), "/run_%03zu.sig", I);
        if (!writeSummaryFor(T, SummaryOut + Name))
          return 1;
      }
    }
    return 0;
  }

  Trace T;
  if (!Bench.empty()) {
    if (!isSuiteBenchmark(Bench)) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n", Bench.c_str());
      return 1;
    }
    T = generateSuiteTrace(Bench, Scale, Seed);
  } else if (UseGen) {
    G.Seed = Seed;
    T = generateWorkload(G);
  } else {
    T = generateSuiteTrace("producerconsumer", Scale, Seed);
  }

  std::string Err;
  if (!T.validate(&Err)) {
    std::fprintf(stderr, "internal error: generated invalid trace: %s\n",
                 Err.c_str());
    return 1;
  }

  if (Out == "-") {
    if (Binary)
      writeTraceBinary(std::cout, T);
    else
      writeTrace(std::cout, T);
  } else if (Binary ? !writeTraceFileBinary(Out, T)
                    : !writeTraceFile(Out, T)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
    return 1;
  } else {
    std::fprintf(stderr, "wrote %zu events to %s\n", T.size(), Out.c_str());
  }
  if (!SummaryOut.empty() && !writeSummaryFor(T, SummaryOut))
    return 1;
  return 0;
}
