//===- examples/tracegen_tool.cpp - Trace generation CLI --------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates synthetic executions (the 26-benchmark suite or the
/// parameterized workload generator) and writes them in the RAPID-like
/// text format, so they can be archived, inspected, or fed back through
/// offline_analysis --file.
///
/// Usage:
///   tracegen_tool --bench sor --scale 0.5 -o sor.trace
///   tracegen_tool --threads 8 --locks 16 --events 100000 -o wl.trace
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sampletrack;

int main(int argc, char **argv) {
  std::string Bench, Out = "-";
  bool Binary = false;
  double Scale = 0.25;
  uint64_t Seed = 1;
  GenConfig G;
  bool UseGen = false;

  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      if (A + 1 >= argc)
        exit(2);
      return argv[++A];
    };
    if (Arg == "--bench")
      Bench = Next();
    else if (Arg == "--scale")
      Scale = std::atof(Next());
    else if (Arg == "--seed")
      Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "-o")
      Out = Next();
    else if (Arg == "--binary")
      Binary = true;
    else if (Arg == "--threads") {
      G.NumThreads = std::strtoull(Next(), nullptr, 10);
      UseGen = true;
    } else if (Arg == "--locks") {
      G.NumLocks = std::strtoull(Next(), nullptr, 10);
      UseGen = true;
    } else if (Arg == "--events") {
      G.NumEvents = std::strtoull(Next(), nullptr, 10);
      UseGen = true;
    } else if (Arg == "--access-frac") {
      G.AccessFraction = std::atof(Next());
      UseGen = true;
    } else {
      std::fprintf(stderr,
                   "usage: tracegen_tool [--bench NAME --scale S | "
                   "--threads N --locks N --events N [--access-frac F]] "
                   "[--seed N] [-o PATH] [--binary]\n");
      return 2;
    }
  }

  Trace T;
  if (!Bench.empty()) {
    if (!isSuiteBenchmark(Bench)) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n", Bench.c_str());
      return 1;
    }
    T = generateSuiteTrace(Bench, Scale, Seed);
  } else if (UseGen) {
    G.Seed = Seed;
    T = generateWorkload(G);
  } else {
    T = generateSuiteTrace("producerconsumer", Scale, Seed);
  }

  std::string Err;
  if (!T.validate(&Err)) {
    std::fprintf(stderr, "internal error: generated invalid trace: %s\n",
                 Err.c_str());
    return 1;
  }

  if (Out == "-") {
    if (Binary)
      writeTraceBinary(std::cout, T);
    else
      writeTrace(std::cout, T);
  } else if (Binary ? !writeTraceFileBinary(Out, T)
                    : !writeTraceFile(Out, T)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
    return 1;
  } else {
    std::fprintf(stderr, "wrote %zu events to %s\n", T.size(), Out.c_str());
  }
  return 0;
}
