//===- examples/race_triage.cpp - Record online, triage offline -------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A realistic triage workflow enabled by the record/replay facility:
///
///  1. run the production-shaped workload under the cheap SO engine at a
///     low sampling rate, with trace recording enabled (the runtime is
///     configured from the same api::SessionConfig record the offline
///     pipeline uses);
///  2. a race pops up; persist the recorded execution to disk;
///  3. offline, stream the recorded execution through one
///     api::AnalysisSession fanning out full FastTrack (to enumerate every
///     racy location the execution contains) and the sampling engines (to
///     confirm the online report) — one read of the file, three engines.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::rt;

int main() {
  std::printf("== Race triage: record online at 3%%, replay offline ==\n\n");

  // -- Step 1: production run under SO at 3% with recording --------------
  // One config record drives both halves of the workflow: here it shapes
  // the online runtime, below it shapes the offline replay pipeline.
  api::SessionConfig Session;
  Session.SamplingRate = 0.03;
  Session.Seed = 42;
  Session.MaxThreads = 8;
  Session.RecordTrace = true;
  Runtime Rt(Session.runtimeConfig(Mode::SO));

  Mutex Lock(Rt);
  uint64_t Protected = 0;
  uint64_t Buggy = 0; // Touched without the lock: the bug to find.

  constexpr size_t Workers = 4;
  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < Workers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      SplitMix64 Rng(W + 1);
      for (int I = 0; I < 4000; ++I) {
        Lock.lock(Tids[W]);
        Rt.onWrite(Tids[W], reinterpret_cast<uint64_t>(&Protected));
        Protected++;
        Lock.unlock(Tids[W]);
        // The bug: a "fast path" update that skips the lock.
        if (Rng.nextBool(0.2)) {
          Rt.onWrite(Tids[W], reinterpret_cast<uint64_t>(&Buggy));
          reinterpret_cast<std::atomic<uint64_t> &>(Buggy).fetch_add(1);
        }
      }
      // The worst part of the bug: a lock-free "flush" loop at the end.
      // These writes are concurrent across workers (no lock is taken after
      // them), so races are plentiful even under sampling.
      for (int I = 0; I < 400; ++I) {
        Rt.onWrite(Tids[W], reinterpret_cast<uint64_t>(&Buggy));
        reinterpret_cast<std::atomic<uint64_t> &>(Buggy).fetch_add(1);
      }
    });
  }
  for (size_t W = 0; W < Workers; ++W) {
    Threads[W].join();
    Rt.onJoin(0, Tids[W]);
  }

  std::printf("online (SO, 3%%): %llu race report(s) at %zu location(s)\n",
              static_cast<unsigned long long>(Rt.raceCount()),
              Rt.racyLocationCount());

  // -- Step 2: persist the recorded execution ----------------------------
  Trace Recorded = Rt.recordedTrace();
  const char *Path = "/tmp/sampletrack_triage.trace";
  if (!writeTraceFileBinary(Path, Recorded)) {
    std::fprintf(stderr, "error: cannot write %s\n", Path);
    return 1;
  }
  std::printf("recorded %zu events to %s\n\n", Recorded.size(), Path);

  // -- Step 3: offline triage ---------------------------------------------
  // FT ignores marks (full detection); the sampling engines replay the
  // exact online sample set via the recorded Marked bits. The binary trace
  // is streamed straight off disk, read once, into all three lanes.
  Session.Engines = {EngineKind::FastTrack, EngineKind::SamplingNaive,
                     EngineKind::SamplingO};
  Session.Sampling = api::SamplerKind::Marked;
  api::SessionResult Triage;
  std::string Err;
  if (!api::AnalysisSession(Session).runFile(Path, Triage, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  std::printf("%-22s %8s %10s\n", "offline engine", "races", "racy locs");
  for (const api::EngineRun &E : Triage.Engines)
    std::printf("%-22s %8llu %10llu\n", E.Engine.c_str(),
                static_cast<unsigned long long>(E.NumRaces),
                static_cast<unsigned long long>(E.NumRacyLocations));

  std::printf("\nFT on the recorded execution confirms and completes the "
              "online sampling report; the sampling replays reproduce it "
              "exactly.\n");
  std::remove(Path);
  return 0;
}
