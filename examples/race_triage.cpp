//===- examples/race_triage.cpp - The race warehouse workflow ---------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flagship triage workflow at fleet scale: many runs, one
/// deduplicated, ranked, persistent view of the races.
///
/// Default mode simulates three deployments of one service:
///
///  1. Day 1 — analyze the workload, merge into a fresh warehouse, persist
///     it. Every race is NEW (first sighting).
///  2. Day 2 — the same build redeployed: identical analysis, merged
///     against the persisted store. ZERO new races (everything dedups to
///     known signatures), even though thousands of declarations flowed in.
///  3. Day 3 — a "patch" introduces one fresh racy pair. Exactly ONE new
///     race surfaces, ranked output and SARIF in hand.
///
/// The exit code enforces the contract (0 new on day 2, 1 new on day 3),
/// so CI can smoke-run this binary as a regression gate.
///
/// Corpus mode (`race_triage --corpus DIR [--store PATH]`) merges every
/// binary trace in DIR — e.g. the output of `tracegen_tool --corpus N` —
/// into one store, printing the new/known/regressed classification per
/// run and the final ranked report.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

using namespace sampletrack;

namespace {

/// One "deployment" of the simulated service: a deterministic workload
/// trace (same build = same seed = same races), analyzed by a two-lane
/// session (full FT plus the cheap SO engine, one traversal).
api::SessionResult analyzeDeployment(uint64_t Seed, bool InjectBug) {
  GenConfig G;
  G.NumThreads = 8;
  G.NumLocks = 12;
  G.NumVars = 256;
  G.NumEvents = 40000;
  G.UnprotectedFraction = 0.05;
  G.RacyVars = 6;
  G.Seed = Seed;
  Trace T = generateWorkload(G);
  if (InjectBug) {
    // The patch: a new lock-free fast path over a fresh shared cell.
    T.write(1, 100000, /*Marked=*/true);
    T.write(2, 100000, /*Marked=*/true);
  }

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Always;
  return api::AnalysisSession(Cfg).run(T);
}

void printMerge(const char *Label, const api::SessionResult &R,
                const triage::TriageStore::MergeResult &M) {
  uint64_t Declared = R.Triage.RacesDeclared;
  std::printf("%s: %llu declaration(s) -> %zu signature(s): "
              "%llu new, %llu known, %llu regressed, %llu suppressed\n",
              Label, static_cast<unsigned long long>(Declared),
              R.Triage.distinct(),
              static_cast<unsigned long long>(M.NewSignatures),
              static_cast<unsigned long long>(M.KnownSignatures),
              static_cast<unsigned long long>(M.RegressedSignatures),
              static_cast<unsigned long long>(M.SuppressedSignatures));
}

int corpusMode(const std::string &Dir, const std::string &StorePath) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec))
    if (E.is_regular_file())
      Files.push_back(E.path().string());
  if (Ec || Files.empty()) {
    std::fprintf(stderr, "error: no corpus traces in '%s'\n", Dir.c_str());
    return 1;
  }
  std::sort(Files.begin(), Files.end()); // Deterministic run order.

  triage::TriageStore Store;
  std::string Err;
  if (!StorePath.empty() && !Store.loadIfExists(StorePath, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Always;
  for (const std::string &File : Files) {
    api::SessionResult R;
    if (!api::AnalysisSession(Cfg).runFile(File, R, &Err)) {
      std::fprintf(stderr, "error: %s: %s\n", File.c_str(), Err.c_str());
      return 1;
    }
    triage::TriageStore::MergeResult M = Store.mergeRun(R.Triage);
    printMerge(File.c_str(), R, M);
  }

  std::printf("\n%s", triage::toText(Store, 10).c_str());
  if (!StorePath.empty()) {
    if (!Store.save(StorePath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("\n(store saved to %s)\n", StorePath.c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Corpus, StorePath;
  for (int A = 1; A < argc; ++A) {
    if (!std::strcmp(argv[A], "--corpus") && A + 1 < argc)
      Corpus = argv[++A];
    else if (!std::strcmp(argv[A], "--store") && A + 1 < argc)
      StorePath = argv[++A];
    else {
      std::fprintf(stderr,
                   "usage: race_triage [--corpus DIR] [--store PATH]\n");
      return 2;
    }
  }
  if (!Corpus.empty())
    return corpusMode(Corpus, StorePath);
  if (!StorePath.empty()) {
    // The demo deletes and recreates its store to keep the 0-new/1-new
    // contract reproducible; never do that to a user-supplied warehouse.
    std::fprintf(stderr,
                 "error: --store is for --corpus mode; the demo manages "
                 "its own temporary store\n");
    return 2;
  }

  std::printf("== Race triage at scale: one warehouse across runs ==\n\n");

  api::SessionConfig Cfg; // Only the triage knobs are used here.
  Cfg.TriageStorePath = "/tmp/sampletrack_triage.store";
  std::remove(Cfg.TriageStorePath.c_str()); // Fresh warehouse for the demo.
  std::string Err;

  // -- Day 1: first deployment ------------------------------------------
  api::SessionResult Day1 = analyzeDeployment(/*Seed=*/42, false);
  api::TriageOutcome O1;
  if (!api::runTriage(Cfg, Day1, O1, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  printMerge("day 1 (fresh store)   ", Day1, O1.Merge);

  // -- Day 2: same build redeployed -------------------------------------
  api::SessionResult Day2 = analyzeDeployment(/*Seed=*/42, false);
  api::TriageOutcome O2;
  if (!api::runTriage(Cfg, Day2, O2, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  printMerge("day 2 (same build)    ", Day2, O2.Merge);

  // -- Day 3: a patch introduces one fresh racy pair ---------------------
  api::SessionResult Day3 = analyzeDeployment(/*Seed=*/42, true);
  api::TriageOutcome O3;
  if (!api::runTriage(Cfg, Day3, O3, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  printMerge("day 3 (buggy patch)   ", Day3, O3.Merge);
  for (const triage::TriageEntry &E : O3.Merge.NewRaces)
    std::printf("  -> new race %s (var V%llu)\n",
                triage::RaceSignature{E.Signature}.hex().c_str(),
                static_cast<unsigned long long>(E.Exemplar.Var));

  // -- The warehouse views -----------------------------------------------
  std::printf("\n%s", triage::toText(O3.Store, 5).c_str());
  std::string SarifPath = Cfg.TriageStorePath + ".sarif";
  if (api::writeFile(SarifPath, triage::toSarif(O3.Store)))
    std::printf("\n(SARIF 2.1.0 log written to %s)\n", SarifPath.c_str());

  // -- The contract CI smokes --------------------------------------------
  bool Ok = O2.Merge.NewSignatures == 0 && O3.Merge.NewSignatures == 1;
  std::printf("\nday-2 new races: %llu (want 0), day-3 new races: %llu "
              "(want 1) -> %s\n",
              static_cast<unsigned long long>(O2.Merge.NewSignatures),
              static_cast<unsigned long long>(O3.Merge.NewSignatures),
              Ok ? "OK" : "FAILED");
  std::remove(Cfg.TriageStorePath.c_str());
  std::remove(SarifPath.c_str());
  return Ok ? 0 : 1;
}
